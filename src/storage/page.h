// On-disk page format shared by the storage engine (DESIGN.md §14).
//
// A page file is a sequence of fixed-size pages. Every data page carries a
// 32-byte header whose checksum covers the header itself (with the
// checksum field zeroed) plus the used payload bytes, so a torn or
// bit-flipped page is detected on read instead of silently corrupting the
// structures built on top. The checksum is FNV-1a/64 — fast, dependency-
// free, and strong enough for crash/corruption *detection* (the page file
// is not a cryptographic integrity boundary).
//
// Page ids are logical data-page indexes; the two superblock slots
// (page_file.h) live before data page 0 and are not addressable as pages.

#ifndef GEACC_STORAGE_PAGE_H_
#define GEACC_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>

namespace geacc::storage {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

inline constexpr uint32_t kPageMagic = 0x47435047u;  // "GPCG"
inline constexpr uint32_t kDefaultPageSize = 8192;
inline constexpr uint32_t kMinPageSize = 512;

// Data-page types. The storage engine itself only distinguishes pages for
// debugging and type-confusion checks; clients pick the values.
inline constexpr uint16_t kPageTypeFree = 0;
inline constexpr uint16_t kPageTypeLeaf = 1;
inline constexpr uint16_t kPageTypeInternal = 2;
inline constexpr uint16_t kPageTypeCheckpoint = 3;

struct PageHeader {
  uint32_t magic = kPageMagic;
  PageId page_id = kInvalidPageId;
  uint16_t type = kPageTypeFree;
  uint16_t flags = 0;
  uint32_t payload_bytes = 0;
  uint64_t reserved = 0;
  uint64_t checksum = 0;  // FNV-1a over the header (this field zeroed)
                          // followed by payload[0, payload_bytes).
};
static_assert(sizeof(PageHeader) == 32, "page header layout is on disk");

// FNV-1a/64 over `bytes`, chainable via `seed` for multi-buffer hashes.
inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;

inline uint64_t Fnv1a64(const void* bytes, size_t count,
                        uint64_t seed = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  uint64_t hash = seed;
  for (size_t i = 0; i < count; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// The checksum a well-formed page with this identity and content carries.
// Deterministic in (page_id, type, payload content), so equal checksums
// mean "this page already holds exactly this content" — the property the
// checkpoint store's dirty-page diffing relies on.
inline uint64_t PageChecksum(PageId page_id, uint16_t type,
                             const void* payload, uint32_t payload_bytes) {
  PageHeader header;
  header.page_id = page_id;
  header.type = type;
  header.payload_bytes = payload_bytes;
  header.checksum = 0;
  uint64_t hash = Fnv1a64(&header, sizeof(header));
  return Fnv1a64(payload, payload_bytes, hash);
}

}  // namespace geacc::storage

#endif  // GEACC_STORAGE_PAGE_H_
