// Unit tests for Arrangement: mutation, MaxSum, and the feasibility
// validator (each violation class must be detected).

#include <gtest/gtest.h>

#include "core/arrangement.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

// 2 events × 3 users, all sims positive except (1, 2); v0 ⊥ v1.
Instance Fixture() {
  return geacc::testing::MakeTableInstance(
      {{0.9, 0.5, 0.4}, {0.8, 0.6, 0.0}}, {2, 2}, {2, 1, 1}, {{0, 1}});
}

TEST(Arrangement, AddRemoveContains) {
  Arrangement arr(2, 3);
  EXPECT_TRUE(arr.empty());
  arr.Add(0, 1);
  arr.Add(1, 2);
  EXPECT_TRUE(arr.Contains(0, 1));
  EXPECT_FALSE(arr.Contains(1, 1));
  EXPECT_EQ(arr.size(), 2);
  EXPECT_EQ(arr.EventLoad(0), 1);
  EXPECT_EQ(arr.UserLoad(2), 1);
  arr.Remove(0, 1);
  EXPECT_FALSE(arr.Contains(0, 1));
  EXPECT_EQ(arr.size(), 1);
  EXPECT_EQ(arr.EventLoad(0), 0);
}

TEST(Arrangement, RemoveAbsentDies) {
  Arrangement arr(2, 3);
  EXPECT_DEATH(arr.Remove(0, 0), "absent");
}

TEST(Arrangement, SortedPairsDeterministic) {
  Arrangement arr(2, 3);
  arr.Add(1, 2);
  arr.Add(0, 0);
  arr.Add(1, 0);
  const auto pairs = arr.SortedPairs();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], std::make_pair(EventId{0}, UserId{0}));
  EXPECT_EQ(pairs[1], std::make_pair(EventId{1}, UserId{0}));
  EXPECT_EQ(pairs[2], std::make_pair(EventId{1}, UserId{2}));
}

TEST(Arrangement, MaxSum) {
  const Instance instance = Fixture();
  Arrangement arr(2, 3);
  arr.Add(0, 0);  // 0.9
  arr.Add(1, 1);  // 0.6
  EXPECT_NEAR(arr.MaxSum(instance), 1.5, 1e-12);
}

TEST(Arrangement, ValidateAcceptsFeasible) {
  const Instance instance = Fixture();
  Arrangement arr(2, 3);
  arr.Add(0, 0);
  arr.Add(0, 1);
  EXPECT_EQ(arr.Validate(instance), "");
}

TEST(Arrangement, ValidateDetectsEventOverCapacity) {
  const Instance instance = Fixture();
  Arrangement arr(2, 3);
  arr.Add(0, 0);
  arr.Add(0, 1);
  arr.Add(0, 2);  // event 0 capacity is 2
  EXPECT_NE(arr.Validate(instance).find("event 0 over capacity"),
            std::string::npos);
}

TEST(Arrangement, ValidateDetectsUserOverCapacity) {
  const Instance instance = geacc::testing::MakeTableInstance(
      {{0.9}, {0.8}, {0.7}}, {1, 1, 1}, {2}, {});
  Arrangement arr(3, 1);
  arr.Add(0, 0);
  arr.Add(1, 0);
  arr.Add(2, 0);  // user 0 capacity is 2
  EXPECT_NE(arr.Validate(instance).find("user 0 over capacity"),
            std::string::npos);
}

TEST(Arrangement, ValidateDetectsConflict) {
  const Instance instance = Fixture();
  Arrangement arr(2, 3);
  arr.Add(0, 0);
  arr.Add(1, 0);  // v0 ⊥ v1, both on user 0
  EXPECT_NE(arr.Validate(instance).find("conflicting events"),
            std::string::npos);
}

TEST(Arrangement, ValidateDetectsNonPositiveSimilarity) {
  const Instance instance = Fixture();
  Arrangement arr(2, 3);
  arr.Add(1, 2);  // sim = 0
  EXPECT_NE(arr.Validate(instance).find("non-positive similarity"),
            std::string::npos);
}

TEST(Arrangement, ValidateDetectsSizeMismatch) {
  const Instance instance = Fixture();
  const Arrangement arr(3, 3);
  EXPECT_NE(arr.Validate(instance), "");
}

TEST(Arrangement, EventsOfTracksInsertionOrder) {
  Arrangement arr(3, 1);
  arr.Add(2, 0);
  arr.Add(0, 0);
  EXPECT_EQ(arr.EventsOf(0), (std::vector<EventId>{2, 0}));
}

}  // namespace
}  // namespace geacc
