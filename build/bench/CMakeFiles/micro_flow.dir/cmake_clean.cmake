file(REMOVE_RECURSE
  "CMakeFiles/micro_flow.dir/micro_flow.cc.o"
  "CMakeFiles/micro_flow.dir/micro_flow.cc.o.d"
  "micro_flow"
  "micro_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
