#include "verify/audit.h"

#include <map>
#include <utility>

#include "util/string_util.h"

namespace geacc::verify {

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kInstanceMismatch:
      return "instance_mismatch";
    case ViolationKind::kPairOutOfRange:
      return "pair_out_of_range";
    case ViolationKind::kEventOverCapacity:
      return "event_over_capacity";
    case ViolationKind::kUserOverCapacity:
      return "user_over_capacity";
    case ViolationKind::kNonPositiveSimilarity:
      return "non_positive_similarity";
    case ViolationKind::kDuplicatePair:
      return "duplicate_pair";
    case ViolationKind::kConflictingPair:
      return "conflicting_pair";
    case ViolationKind::kNonMaximal:
      return "non_maximal";
  }
  return "unknown";
}

std::string Violation::Description() const {
  switch (kind) {
    case ViolationKind::kInstanceMismatch:
      return "arrangement sized for a different instance";
    case ViolationKind::kPairOutOfRange:
      return StrFormat("pair {%d,%d} references an out-of-range event", event,
                       user);
    case ViolationKind::kEventOverCapacity:
      return StrFormat("event %d over capacity: %.0f > %.0f", event, observed,
                       limit);
    case ViolationKind::kUserOverCapacity:
      return StrFormat("user %d over capacity: %.0f > %.0f", user, observed,
                       limit);
    case ViolationKind::kNonPositiveSimilarity:
      return StrFormat("pair {%d,%d} has non-positive similarity %.6g", event,
                       user, observed);
    case ViolationKind::kDuplicatePair:
      return StrFormat("pair {%d,%d} stored %.0f times (MaxSum double-counts)",
                       event, user, observed);
    case ViolationKind::kConflictingPair:
      return StrFormat("user %d assigned conflicting events %d and %d", user,
                       event, other_event);
    case ViolationKind::kNonMaximal:
      return StrFormat(
          "not maximal: feasible pair {%d,%d} (sim %.6g) is unmatched", event,
          user, observed);
  }
  return "unknown violation";
}

int AuditReport::Count(ViolationKind kind) const {
  int count = 0;
  for (const Violation& violation : violations) {
    if (violation.kind == kind) ++count;
  }
  return count;
}

std::string AuditReport::Summary() const {
  std::string summary;
  for (const Violation& violation : violations) {
    if (!summary.empty()) summary += "\n";
    summary += violation.Description();
  }
  return summary;
}

obs::JsonValue AuditReport::ToJson() const {
  obs::JsonValue json = obs::JsonValue::Object();
  json.Set("ok", ok());
  obs::JsonValue counts = obs::JsonValue::Object();
  std::map<std::string, int64_t> by_kind;
  for (const Violation& violation : violations) {
    ++by_kind[ViolationKindName(violation.kind)];
  }
  for (const auto& [name, count] : by_kind) counts.Set(name, count);
  json.Set("counts", std::move(counts));
  obs::JsonValue list = obs::JsonValue::Array();
  for (const Violation& violation : violations) {
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("kind", ViolationKindName(violation.kind));
    if (violation.event >= 0) entry.Set("event", violation.event);
    if (violation.other_event >= 0) {
      entry.Set("other_event", violation.other_event);
    }
    if (violation.user >= 0) entry.Set("user", violation.user);
    entry.Set("observed", violation.observed);
    entry.Set("limit", violation.limit);
    entry.Set("description", violation.Description());
    list.Append(std::move(entry));
  }
  json.Set("violations", std::move(list));
  return json;
}

namespace {

// Appends unless the cap is hit; returns false once full so scans can
// stop early.
bool Report(AuditReport& report, const AuditOptions& options,
            Violation violation) {
  if (options.max_violations > 0 &&
      static_cast<int>(report.violations.size()) >= options.max_violations) {
    return false;
  }
  report.violations.push_back(std::move(violation));
  return options.max_violations == 0 ||
         static_cast<int>(report.violations.size()) < options.max_violations;
}

}  // namespace

AuditReport AuditArrangement(const Instance& instance,
                             const Arrangement& arrangement,
                             const AuditOptions& options) {
  AuditReport report;
  if (instance.num_events() != arrangement.num_events() ||
      instance.num_users() != arrangement.num_users()) {
    Violation violation;
    violation.kind = ViolationKind::kInstanceMismatch;
    violation.observed = static_cast<double>(arrangement.num_events());
    violation.limit = static_cast<double>(instance.num_events());
    Report(report, options, violation);
    return report;  // per-pair checks would index out of range
  }

  // Per-event load (recomputed from the per-user lists rather than read
  // from EventLoad so a corrupted load counter cannot hide a violation).
  std::vector<int64_t> event_loads(instance.num_events(), 0);
  for (UserId u = 0; u < instance.num_users(); ++u) {
    const std::vector<EventId>& events = arrangement.EventsOf(u);
    if (static_cast<int64_t>(events.size()) > instance.user_capacity(u)) {
      Violation violation;
      violation.kind = ViolationKind::kUserOverCapacity;
      violation.user = u;
      violation.observed = static_cast<double>(events.size());
      violation.limit = static_cast<double>(instance.user_capacity(u));
      if (!Report(report, options, violation)) return report;
    }
    for (size_t i = 0; i < events.size(); ++i) {
      const EventId v = events[i];
      if (v < 0 || v >= instance.num_events()) {
        Violation violation;
        violation.kind = ViolationKind::kPairOutOfRange;
        violation.event = v;
        violation.user = u;
        if (!Report(report, options, violation)) return report;
        continue;  // similarity/conflict checks would index out of range
      }
      ++event_loads[v];
      const double similarity = instance.Similarity(v, u);
      if (similarity <= 0.0) {
        Violation violation;
        violation.kind = ViolationKind::kNonPositiveSimilarity;
        violation.event = v;
        violation.user = u;
        violation.observed = similarity;
        if (!Report(report, options, violation)) return report;
      }
      int duplicates = 0;
      for (size_t j = i + 1; j < events.size(); ++j) {
        if (events[j] == v) ++duplicates;
      }
      // Report each duplicated pair once, from its first occurrence.
      bool first_occurrence = true;
      for (size_t j = 0; j < i; ++j) {
        if (events[j] == v) first_occurrence = false;
      }
      if (duplicates > 0 && first_occurrence) {
        Violation violation;
        violation.kind = ViolationKind::kDuplicatePair;
        violation.event = v;
        violation.user = u;
        violation.observed = static_cast<double>(duplicates + 1);
        if (!Report(report, options, violation)) return report;
      }
      for (size_t j = i + 1; j < events.size(); ++j) {
        if (events[j] < 0 || events[j] >= instance.num_events()) continue;
        if (events[j] != v &&
            instance.conflicts().AreConflicting(v, events[j])) {
          Violation violation;
          violation.kind = ViolationKind::kConflictingPair;
          violation.event = v;
          violation.other_event = events[j];
          violation.user = u;
          if (!Report(report, options, violation)) return report;
        }
      }
    }
  }

  for (EventId v = 0; v < instance.num_events(); ++v) {
    if (event_loads[v] > instance.event_capacity(v)) {
      Violation violation;
      violation.kind = ViolationKind::kEventOverCapacity;
      violation.event = v;
      violation.observed = static_cast<double>(event_loads[v]);
      violation.limit = static_cast<double>(instance.event_capacity(v));
      if (!Report(report, options, violation)) return report;
    }
  }

  if (options.check_maximality) {
    for (UserId u = 0; u < instance.num_users(); ++u) {
      const std::vector<EventId>& events = arrangement.EventsOf(u);
      if (static_cast<int>(events.size()) >= instance.user_capacity(u)) {
        continue;
      }
      for (EventId v = 0; v < instance.num_events(); ++v) {
        if (event_loads[v] >= instance.event_capacity(v)) continue;
        if (arrangement.Contains(v, u)) continue;
        const double similarity = instance.Similarity(v, u);
        if (similarity <= 0.0) continue;
        bool conflicting = false;
        for (const EventId w : events) {
          if (instance.conflicts().AreConflicting(v, w)) {
            conflicting = true;
            break;
          }
        }
        if (conflicting) continue;
        Violation violation;
        violation.kind = ViolationKind::kNonMaximal;
        violation.event = v;
        violation.user = u;
        violation.observed = similarity;
        if (!Report(report, options, violation)) return report;
      }
    }
  }
  return report;
}

bool SolverGuaranteesMaximality(const std::string& solver_name) {
  return solver_name == "greedy" || solver_name == "greedy-sortall" ||
         solver_name == "online-greedy" || solver_name == "prune" ||
         solver_name == "exhaustive" || solver_name == "bruteforce";
}

}  // namespace geacc::verify
