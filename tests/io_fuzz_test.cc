// Deterministic fuzz for the text parsers. Trace and instance files —
// and through the shared mutation-line codec, the service WAL and the
// wire's kMutate payload — cross trust boundaries, so every malformed
// input must come back as nullopt + diagnostic, never a crash, hang, or
// huge speculative allocation.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "gen/trace_gen.h"
#include "io/instance_io.h"
#include "io/trace_io.h"
#include "util/rng.h"

namespace geacc {
namespace {

std::string CanonicalInstanceText() {
  SyntheticConfig config;
  config.num_events = 6;
  config.num_users = 18;
  config.dim = 3;
  config.conflict_density = 0.3;
  config.seed = 5;
  std::ostringstream os;
  WriteInstance(GenerateSynthetic(config), os);
  return os.str();
}

std::string CanonicalTraceText() {
  TraceGenConfig config;
  config.initial_events = 6;
  config.initial_users = 18;
  config.dim = 3;
  config.num_mutations = 40;
  config.seed = 5;
  std::ostringstream os;
  WriteTrace(GenerateTrace(config), os);
  return os.str();
}

void ExpectInstanceRejected(const std::string& text, const char* what) {
  std::istringstream is(text);
  std::string error;
  EXPECT_FALSE(ReadInstance(is, &error).has_value()) << what;
  EXPECT_FALSE(error.empty()) << what << ": rejected without a diagnostic";
}

void ExpectTraceRejected(const std::string& text, const char* what) {
  std::istringstream is(text);
  std::string error;
  EXPECT_FALSE(ReadTrace(is, &error).has_value()) << what;
  EXPECT_FALSE(error.empty()) << what << ": rejected without a diagnostic";
}

TEST(IoFuzz, CanonicalFilesRoundTrip) {
  // Sanity: the canonical bytes are accepted before we start breaking them.
  std::istringstream instance_is(CanonicalInstanceText());
  std::string error;
  ASSERT_TRUE(ReadInstance(instance_is, &error).has_value()) << error;
  std::istringstream trace_is(CanonicalTraceText());
  ASSERT_TRUE(ReadTrace(trace_is, &error).has_value()) << error;
}

TEST(IoFuzz, InstanceTruncatedAtEveryLineIsRejected) {
  const std::string text = CanonicalInstanceText();
  std::vector<size_t> line_starts = {0};
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') line_starts.push_back(i + 1);
  }
  // Every proper line-prefix (except the complete file) must be rejected:
  // the format declares counts up front, so a missing tail is detectable.
  for (size_t i = 1; i + 1 < line_starts.size(); ++i) {
    ExpectInstanceRejected(text.substr(0, line_starts[i]),
                           "line truncation");
  }
}

TEST(IoFuzz, InstanceTruncatedMidLineIsRejected) {
  const std::string text = CanonicalInstanceText();
  // Cuts inside the *final* line can leave a shorter-but-parsable line
  // (e.g. "conflict 0 12" → "conflict 0 1"), so sweep only cuts that
  // provably drop a declared record; the final line is covered by the
  // corruption test's no-crash guarantee.
  const size_t last_line_start = text.rfind('\n', text.size() - 2) + 1;
  Rng rng(17);
  for (int round = 0; round < 200; ++round) {
    const size_t cut = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(last_line_start) - 1));
    std::istringstream is(text.substr(0, cut));
    std::string error;
    EXPECT_FALSE(ReadInstance(is, &error).has_value())
        << "accepted a " << cut << "-byte prefix";
  }
}

TEST(IoFuzz, InstanceSingleByteCorruptionNeverCrashes) {
  const std::string text = CanonicalInstanceText();
  Rng rng(23);
  for (int round = 0; round < 500; ++round) {
    std::string corrupt = text;
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(text.size()) - 1));
    corrupt[pos] = static_cast<char>(rng.UniformInt(0, 255));
    std::istringstream is(corrupt);
    std::string error;
    (void)ReadInstance(is, &error);  // accept or reject; never crash
  }
}

TEST(IoFuzz, InstanceStructuralGarbageIsRejected) {
  ExpectInstanceRejected("", "empty file");
  ExpectInstanceRejected("\n\n\n", "blank lines");
  ExpectInstanceRejected("geacc-instance v2\n", "wrong version");
  ExpectInstanceRejected("not-a-geacc-file v1\n", "wrong magic");
  ExpectInstanceRejected(std::string(4096, 'A'), "letter soup");
  ExpectInstanceRejected(std::string("\0\0\0\0\0\0\0\0", 8),
                         "binary zeros");
  ExpectInstanceRejected(
      "geacc-instance v1\nsimilarity euclidean 10000\ndim 3\n"
      "events 1\nevent 2 1.0 2.0\n",  // 2 attrs, dim 3
      "attribute arity mismatch");
  ExpectInstanceRejected(
      "geacc-instance v1\nsimilarity euclidean 10000\ndim 3\n"
      "events -4\n",
      "negative count");
  ExpectInstanceRejected(
      "geacc-instance v1\nsimilarity euclidean 10000\ndim 3\n"
      "events 999999999999\n",
      "absurd count");
  ExpectInstanceRejected(
      "geacc-instance v1\nsimilarity euclidean 10000\ndim 3\n"
      "events 1\nevent nan 1.0 2.0 3.0\n",
      "non-numeric capacity");
}

TEST(IoFuzz, ArrangementGarbageIsRejected) {
  SyntheticConfig config;
  config.num_events = 4;
  config.num_users = 8;
  config.dim = 2;
  config.seed = 9;
  const Instance instance = GenerateSynthetic(config);

  const auto reject = [&](const std::string& text, const char* what) {
    std::istringstream is(text);
    std::string error;
    EXPECT_FALSE(ReadArrangement(is, instance, &error).has_value()) << what;
    EXPECT_FALSE(error.empty()) << what;
  };
  reject("", "empty");
  reject("geacc-arrangement v1\npairs 2\npair 0 0\n", "missing pair");
  reject("geacc-arrangement v1\npairs 1\npair 99 0\n", "event out of range");
  reject("geacc-arrangement v1\npairs 1\npair 0 99\n", "user out of range");
  reject("geacc-arrangement v1\npairs 1\npair 0\n", "short pair line");
}

TEST(IoFuzz, TraceTruncationAndCorruptionNeverCrash) {
  const std::string text = CanonicalTraceText();
  // As above: avoid cuts inside the final line, which can stay parsable.
  const size_t last_line_start = text.rfind('\n', text.size() - 2) + 1;
  Rng rng(31);
  for (int round = 0; round < 300; ++round) {
    const size_t cut = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(last_line_start) - 1));
    std::istringstream is(text.substr(0, cut));
    std::string error;
    EXPECT_FALSE(ReadTrace(is, &error).has_value())
        << "accepted a " << cut << "-byte prefix";
  }
  for (int round = 0; round < 500; ++round) {
    std::string corrupt = text;
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(text.size()) - 1));
    corrupt[pos] = static_cast<char>(rng.UniformInt(0, 255));
    std::istringstream is(corrupt);
    std::string error;
    (void)ReadTrace(is, &error);
  }
}

TEST(IoFuzz, TraceStructuralGarbageIsRejected) {
  ExpectTraceRejected("", "empty file");
  ExpectTraceRejected("geacc-trace v9\n", "wrong version");
  const std::string instance_text = CanonicalInstanceText();
  ExpectTraceRejected("geacc-trace v1\n" + instance_text,
                      "missing mutations section");
  ExpectTraceRejected(
      "geacc-trace v1\n" + instance_text + "mutations 3\nadd_user 2 1 2 3\n",
      "fewer mutations than declared");
  ExpectTraceRejected(
      "geacc-trace v1\n" + instance_text + "mutations 99999999999999\n",
      "absurd mutation count");
  ExpectTraceRejected(
      "geacc-trace v1\n" + instance_text + "mutations 1\nfrobnicate 1 2\n",
      "unknown mutation kind");
}

TEST(IoFuzz, MutationLineParserRejectsMalformedLines) {
  std::string error;
  // The happy path, as a control.
  ASSERT_TRUE(ParseMutationLine("add_user 2 1.5 2.5 3.5", 3).has_value());
  ASSERT_TRUE(ParseMutationLine("set_event_capacity 4 12", 3).has_value());

  const std::vector<const char*> bad = {
      "",
      "   ",
      "add_user",                    // no operands
      "add_user 2 1.5 2.5",          // missing attribute (dim 3)
      "add_user 2 1.5 2.5 3.5 4.5",  // extra attribute
      "add_user 0 1.5 2.5 3.5",      // capacity < 1
      "add_user two 1.5 2.5 3.5",    // non-numeric capacity
      "add_user 2 1.5 nan 3.5",      // non-finite attribute
      "add_user 2 1.5 inf 3.5",
      "remove_user",
      "remove_user -3",
      "remove_user 1.5",
      "remove_user 1 extra",
      "add_conflict 1",
      "add_conflict 1 2 3",
      "set_event_capacity 1 0",
      "set_event_capacity 1 -2",
      "set_user_capacity x 1",
      "frobnicate 1 2",
      "add_user 2 1e999 2 3",  // overflow double
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseMutationLine(line, 3, &error).has_value())
        << "accepted: \"" << line << "\"";
  }

  // Pure garbage bytes, fuzz-style.
  Rng rng(47);
  for (int round = 0; round < 1000; ++round) {
    std::string line(static_cast<size_t>(rng.UniformInt(0, 80)), '\0');
    for (char& c : line) c = static_cast<char>(rng.UniformInt(1, 255));
    (void)ParseMutationLine(line, 3, &error);  // must not crash
  }
}

}  // namespace
}  // namespace geacc
