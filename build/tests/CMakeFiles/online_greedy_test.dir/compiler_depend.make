# Empty compiler generated dependencies file for online_greedy_test.
# This may be replaced when dependencies are built.
