file(REMOVE_RECURSE
  "CMakeFiles/fig3_dimensionality.dir/fig3_dimensionality.cc.o"
  "CMakeFiles/fig3_dimensionality.dir/fig3_dimensionality.cc.o.d"
  "fig3_dimensionality"
  "fig3_dimensionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dimensionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
