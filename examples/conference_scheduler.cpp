// Conference session assignment — GEACC beyond social events.
//
// A two-day conference runs parallel sessions in rooms of limited size.
// Attendees have topical interest profiles; sessions in the same time slot
// conflict. The organizer wants a registration plan maximizing total
// interest: exactly the GEACC problem with slot-derived conflicts. The
// example also demonstrates the exact solver on a small program and the
// interpretation of the approximation guarantee.
//
//   ./build/examples/conference_scheduler [--attendees N] [--seed S]

#include <cstdio>
#include <memory>
#include <vector>

#include "algo/solvers.h"
#include "core/instance.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

// Topics: systems, theory, ML, databases (d = 4 interest dimensions).
struct Session {
  const char* title;
  int slot;      // sessions in the same slot conflict
  int room_size;
  std::vector<double> topics;  // affinity to each topic, in [0, 10]
};

}  // namespace

int main(int argc, char** argv) {
  int attendees = 12;
  int64_t seed = 7;
  geacc::FlagSet flags;
  flags.AddInt("attendees", &attendees, "number of attendees");
  flags.AddInt("seed", &seed, "random seed for attendee profiles");
  flags.Parse(argc, argv);

  const std::vector<Session> program = {
      {"Storage Engines", 0, 4, {9, 1, 1, 8}},
      {"Complexity Zoo", 0, 3, {1, 9, 2, 1}},
      {"LLM Serving", 0, 4, {6, 1, 9, 3}},
      {"Query Optimizers", 1, 4, {4, 3, 2, 9}},
      {"Approximation Algos", 1, 3, {1, 9, 3, 3}},
      {"Vector Databases", 2, 5, {5, 1, 7, 9}},
      {"Consensus Protocols", 2, 4, {9, 4, 1, 4}},
  };

  geacc::InstanceBuilder builder;
  builder.SetSimilarity(std::make_unique<geacc::EuclideanSimilarity>(10.0));
  std::vector<geacc::EventId> sessions;
  for (const Session& session : program) {
    sessions.push_back(builder.AddEvent(session.topics, session.room_size));
  }
  // Same-slot sessions conflict.
  for (size_t a = 0; a < program.size(); ++a) {
    for (size_t b = a + 1; b < program.size(); ++b) {
      if (program[a].slot == program[b].slot) {
        builder.AddConflict(sessions[a], sessions[b]);
      }
    }
  }
  // Attendees: random interest profiles; each can attend one session per
  // slot, i.e. capacity = number of slots.
  geacc::Rng rng(static_cast<uint64_t>(seed));
  for (int i = 0; i < attendees; ++i) {
    std::vector<double> profile(4);
    for (double& x : profile) x = rng.UniformReal(0.0, 10.0);
    builder.AddUser(profile, /*capacity=*/3);
  }
  const geacc::Instance instance = builder.Build();

  std::printf("Conference: %zu sessions in 3 slots, %d attendees\n\n",
              program.size(), attendees);

  const auto exact = geacc::CreateSolver("prune")->Solve(instance);
  const auto greedy = geacc::CreateSolver("greedy")->Solve(instance);
  const double optimal_sum = exact.arrangement.MaxSum(instance);
  const double greedy_sum = greedy.arrangement.MaxSum(instance);
  std::printf("optimal total interest: %.3f (Prune-GEACC, %lld search "
              "nodes)\n",
              optimal_sum, (long long)exact.stats.search_invocations);
  std::printf("greedy  total interest: %.3f = %.1f%% of optimal "
              "(guarantee: >= %.1f%% since max c_u = %d)\n\n",
              greedy_sum, 100.0 * greedy_sum / optimal_sum,
              100.0 / (1 + instance.max_user_capacity()),
              instance.max_user_capacity());

  // Print the optimal per-session rosters.
  std::vector<std::vector<geacc::UserId>> rosters(program.size());
  for (const auto& [v, u] : exact.arrangement.SortedPairs()) {
    rosters[v].push_back(u);
  }
  for (size_t v = 0; v < program.size(); ++v) {
    std::printf("slot %d  %-22s (%zu/%d seats):", program[v].slot,
                program[v].title, rosters[v].size(), program[v].room_size);
    for (const geacc::UserId u : rosters[v]) std::printf(" a%d", u);
    std::printf("\n");
  }
  return 0;
}
