file(REMOVE_RECURSE
  "CMakeFiles/fig4_capacity_v.dir/fig4_capacity_v.cc.o"
  "CMakeFiles/fig4_capacity_v.dir/fig4_capacity_v.cc.o.d"
  "fig4_capacity_v"
  "fig4_capacity_v.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_capacity_v.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
