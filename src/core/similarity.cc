#include "core/similarity.h"

#include <algorithm>
#include <cmath>

#include "core/attributes.h"
#include "util/check.h"

namespace geacc {

EuclideanSimilarity::EuclideanSimilarity(double max_attribute)
    : max_attribute_(max_attribute) {
  GEACC_CHECK_GT(max_attribute, 0.0) << "T must be positive";
}

double EuclideanSimilarity::Compute(const double* a, const double* b,
                                    int dim) const {
  if (dim == 0) return 1.0;
  const double dist = std::sqrt(SquaredEuclideanDistance(a, b, dim));
  const double max_dist = max_attribute_ * std::sqrt(static_cast<double>(dim));
  const double sim = 1.0 - dist / max_dist;
  // Attributes outside [0,T] would push sim below 0; clamp defensively.
  return std::clamp(sim, 0.0, 1.0);
}

std::unique_ptr<SimilarityFunction> EuclideanSimilarity::Clone() const {
  return std::make_unique<EuclideanSimilarity>(max_attribute_);
}

double EuclideanSimilarity::DistanceForSimilarity(double sim, int dim) const {
  const double max_dist = max_attribute_ * std::sqrt(static_cast<double>(dim));
  return (1.0 - sim) * max_dist;
}

double CosineSimilarity::Compute(const double* a, const double* b,
                                 int dim) const {
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (int j = 0; j < dim; ++j) {
    dot += a[j] * b[j];
    norm_a += a[j] * a[j];
    norm_b += b[j] * b[j];
  }
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  return std::clamp(dot / std::sqrt(norm_a * norm_b), 0.0, 1.0);
}

std::unique_ptr<SimilarityFunction> CosineSimilarity::Clone() const {
  return std::make_unique<CosineSimilarity>();
}

RbfSimilarity::RbfSimilarity(double bandwidth) : bandwidth_(bandwidth) {
  GEACC_CHECK_GT(bandwidth, 0.0);
  inv_two_bw_sq_ = 1.0 / (2.0 * bandwidth * bandwidth);
}

double RbfSimilarity::Compute(const double* a, const double* b,
                              int dim) const {
  return std::exp(-SquaredEuclideanDistance(a, b, dim) * inv_two_bw_sq_);
}

std::unique_ptr<SimilarityFunction> RbfSimilarity::Clone() const {
  return std::make_unique<RbfSimilarity>(bandwidth_);
}

double DotSimilarity::Compute(const double* a, const double* b,
                              int dim) const {
  double dot = 0.0;
  for (int j = 0; j < dim; ++j) dot += a[j] * b[j];
  return std::clamp(dot, 0.0, 1.0);
}

std::unique_ptr<SimilarityFunction> DotSimilarity::Clone() const {
  return std::make_unique<DotSimilarity>();
}

std::unique_ptr<SimilarityFunction> MakeSimilarity(const std::string& name,
                                                   double param) {
  if (name == "euclidean") return std::make_unique<EuclideanSimilarity>(param);
  if (name == "cosine") return std::make_unique<CosineSimilarity>();
  if (name == "rbf") return std::make_unique<RbfSimilarity>(param);
  if (name == "dot") return std::make_unique<DotSimilarity>();
  return nullptr;
}

}  // namespace geacc
