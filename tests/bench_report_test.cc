// Tests for the hand-rolled JSON layer (src/obs/json.h) and the
// `geacc-bench v1` report schema (src/obs/bench_report.h).

#include "obs/bench_report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace geacc::obs {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(JsonTest, DumpAndParseRoundTripsScalars) {
  JsonValue object = JsonValue::Object();
  object.Set("null", JsonValue());
  object.Set("bool", true);
  object.Set("int", int64_t{9007199254740993});  // not double-representable
  object.Set("double", 0.125);
  object.Set("string", "hello \"world\"\n\t\x01");

  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(object.Dump(2), &parsed, &error)) << error;
  EXPECT_TRUE(parsed.Find("null")->is_null());
  EXPECT_EQ(parsed.Find("bool")->AsBool(), true);
  EXPECT_EQ(parsed.Find("int")->AsInt(), 9007199254740993);
  EXPECT_EQ(parsed.Find("double")->AsDouble(), 0.125);
  EXPECT_EQ(parsed.Find("string")->AsString(), "hello \"world\"\n\t\x01");
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  JsonValue object = JsonValue::Object();
  object.Set("zebra", 1);
  object.Set("alpha", 2);
  object.Set("mid", 3);
  const std::string dumped = object.Dump();
  EXPECT_LT(dumped.find("zebra"), dumped.find("alpha"));
  EXPECT_LT(dumped.find("alpha"), dumped.find("mid"));
}

TEST(JsonTest, ArraysRoundTrip) {
  JsonValue array = JsonValue::Array();
  array.Append(1);
  array.Append("two");
  array.Append(3.5);
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(array.Dump(), &parsed, nullptr));
  ASSERT_EQ(parsed.items().size(), 3u);
  EXPECT_EQ(parsed.items()[0].AsInt(), 1);
  EXPECT_EQ(parsed.items()[1].AsString(), "two");
  EXPECT_EQ(parsed.items()[2].AsDouble(), 3.5);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  JsonValue value;
  std::string error;
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2",
                          "\"unterminated", "{\"a\" 1}", "nan"}) {
    EXPECT_FALSE(JsonValue::Parse(bad, &value, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonTest, ParseRejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  JsonValue value;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse(deep, &value, &error));
}

TEST(JsonTest, ParseHandlesUnicodeEscapes) {
  JsonValue value;
  ASSERT_TRUE(JsonValue::Parse("\"\\u00e9\\u0041\"", &value, nullptr));
  EXPECT_EQ(value.AsString(), "\xc3\xa9" "A");
}

TEST(JsonTest, NonFiniteDoublesSerializeAsNull) {
  const JsonValue inf(std::numeric_limits<double>::infinity());
  EXPECT_EQ(inf.Dump(), "null");
}

// -------------------------------------------------------------- report --

BenchReport MakeReport() {
  BenchReport report;
  report.bench = "fig6_pruning";
  report.git_rev = "deadbeef";
  report.flags["reps"] = "3";
  report.flags["paper"] = "false";
  BenchPoint point;
  point.label = "rho=0.50";
  point.solver = "prune";
  point.wall_seconds = 0.012;
  point.cpu_seconds = 0.011;
  point.vm_hwm_bytes = 1 << 20;
  point.max_sum = 41.5;
  point.counters["prune.nodes_visited"] = 4821;
  point.counters["prune.nodes_pruned"] = 977;
  point.timers["prune.search"] = {0.0119, 1};
  report.points.push_back(point);
  return report;
}

BenchReport MakeStorageReport() {
  BenchReport report = MakeReport();
  report.bench = "micro_storage";
  BenchPoint& point = report.points[0];
  point.label = "knn/paged";
  point.solver = "idistance-paged";
  point.has_storage = true;
  point.storage.budget_bytes = 8ull << 20;
  point.storage.page_size = 4096;
  point.storage.file_bytes = 32ull << 20;
  point.storage.hits = 91824;
  point.storage.faults = 8112;
  point.storage.evictions = 8100;
  point.storage.flushes = 0;
  return report;
}

TEST(BenchReportTest, ToJsonValidates) {
  std::string error;
  EXPECT_TRUE(ValidateBenchReport(MakeReport().ToJson(), &error)) << error;
}

TEST(BenchReportTest, RoundTripPreservesEverything) {
  const BenchReport original = MakeReport();
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(original.ToJson().Dump(2), &parsed, &error))
      << error;
  BenchReport loaded;
  ASSERT_TRUE(loaded.FromJson(parsed, &error)) << error;

  EXPECT_EQ(loaded.bench, original.bench);
  EXPECT_EQ(loaded.git_rev, original.git_rev);
  EXPECT_EQ(loaded.flags, original.flags);
  ASSERT_EQ(loaded.points.size(), 1u);
  const BenchPoint& point = loaded.points[0];
  EXPECT_EQ(point.label, "rho=0.50");
  EXPECT_EQ(point.solver, "prune");
  EXPECT_EQ(point.wall_seconds, 0.012);
  EXPECT_EQ(point.cpu_seconds, 0.011);
  EXPECT_EQ(point.vm_hwm_bytes, 1 << 20);
  EXPECT_EQ(point.max_sum, 41.5);
  EXPECT_EQ(point.counters, original.points[0].counters);
  ASSERT_EQ(point.timers.count("prune.search"), 1u);
  EXPECT_EQ(point.timers.at("prune.search").seconds, 0.0119);
  EXPECT_EQ(point.timers.at("prune.search").count, 1);
}

TEST(BenchReportTest, StorageSectionRoundTripsAndValidates) {
  const BenchReport original = MakeStorageReport();
  std::string error;
  ASSERT_TRUE(ValidateBenchReport(original.ToJson(), &error)) << error;

  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(original.ToJson().Dump(2), &parsed, &error))
      << error;
  BenchReport loaded;
  ASSERT_TRUE(loaded.FromJson(parsed, &error)) << error;
  ASSERT_EQ(loaded.points.size(), 1u);
  const BenchPoint& point = loaded.points[0];
  ASSERT_TRUE(point.has_storage);
  EXPECT_EQ(point.storage.budget_bytes, 8ull << 20);
  EXPECT_EQ(point.storage.page_size, 4096u);
  EXPECT_EQ(point.storage.file_bytes, 32ull << 20);
  EXPECT_EQ(point.storage.hits, 91824);
  EXPECT_EQ(point.storage.faults, 8112);
  EXPECT_EQ(point.storage.evictions, 8100);
  EXPECT_EQ(point.storage.flushes, 0);

  // A point without the section stays section-free after a round trip.
  BenchReport plain;
  ASSERT_TRUE(plain.FromJson(MakeReport().ToJson(), &error)) << error;
  ASSERT_EQ(plain.points.size(), 1u);
  EXPECT_FALSE(plain.points[0].has_storage);
}

TEST(BenchReportTest, SchemaRejectsMalformedStorageSection) {
  std::string error;

  // Negative counter.
  BenchReport negative = MakeStorageReport();
  negative.points[0].storage.faults = -1;
  EXPECT_FALSE(ValidateBenchReport(negative.ToJson(), &error));
  EXPECT_NE(error.find("faults"), std::string::npos) << error;

  // Missing member.
  JsonValue json = MakeStorageReport().ToJson();
  JsonValue* storage = json.Find("points")->items()[0].Find("storage");
  ASSERT_NE(storage, nullptr);
  JsonValue stripped = JsonValue::Object();
  for (const auto& [name, value] : storage->members()) {
    if (name != "page_size") stripped.Set(name, value);
  }
  json.Find("points")->items()[0].Set("storage", std::move(stripped));
  EXPECT_FALSE(ValidateBenchReport(json, &error));

  // Wrong shape entirely.
  JsonValue scalar = MakeStorageReport().ToJson();
  scalar.Find("points")->items()[0].Set("storage", "not-an-object");
  EXPECT_FALSE(ValidateBenchReport(scalar, &error));
}

TEST(BenchReportTest, SchemaRejectsWrongLiterals) {
  std::string error;

  JsonValue wrong_schema = MakeReport().ToJson();
  wrong_schema.Set("schema", "other-bench");
  EXPECT_FALSE(ValidateBenchReport(wrong_schema, &error));

  JsonValue wrong_version = MakeReport().ToJson();
  wrong_version.Set("version", 2);
  EXPECT_FALSE(ValidateBenchReport(wrong_version, &error));
}

TEST(BenchReportTest, SchemaRejectsMissingOrMistypedFields) {
  std::string error;
  for (const char* field : {"bench", "git_rev", "flags", "points"}) {
    JsonValue json = MakeReport().ToJson();
    JsonValue stripped = JsonValue::Object();
    for (const auto& [name, value] : json.members()) {
      if (name != field) stripped.Set(name, value);
    }
    EXPECT_FALSE(ValidateBenchReport(stripped, &error)) << field;
  }

  JsonValue mistyped = MakeReport().ToJson();
  mistyped.Set("points", "not-an-array");
  EXPECT_FALSE(ValidateBenchReport(mistyped, &error));
}

TEST(BenchReportTest, SchemaRejectsBadPoints) {
  std::string error;

  // Negative measurement.
  BenchReport negative = MakeReport();
  negative.points[0].wall_seconds = -1.0;
  EXPECT_FALSE(ValidateBenchReport(negative.ToJson(), &error));

  // Non-integer counter value.
  JsonValue json = MakeReport().ToJson();
  JsonValue* points = json.Find("points");
  ASSERT_NE(points, nullptr);
  points->items()[0].Find("counters")->Set("prune.nodes_visited", 1.5);
  EXPECT_FALSE(ValidateBenchReport(json, &error));
}

TEST(BenchReportTest, FromJsonRejectsInvalidDocuments) {
  JsonValue not_a_report;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse("{\"schema\":\"geacc-bench\"}", &not_a_report,
                               nullptr));
  BenchReport report;
  EXPECT_FALSE(report.FromJson(not_a_report, &error));
  EXPECT_FALSE(error.empty());
}

TEST(BenchReportTest, WriteFileProducesParseableReport) {
  const std::string path =
      testing::TempDir() + "/geacc_bench_report_test.json";
  std::string error;
  ASSERT_TRUE(MakeReport().WriteFile(path, &error)) << error;

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(buffer.str(), &parsed, &error)) << error;
  EXPECT_TRUE(ValidateBenchReport(parsed, &error)) << error;
  std::remove(path.c_str());
}

TEST(BenchReportTest, WriteFileFailsOnBadPath) {
  std::string error;
  EXPECT_FALSE(MakeReport().WriteFile("/nonexistent-dir/x/y.json", &error));
  EXPECT_FALSE(error.empty());
}

TEST(GitRevisionTest, EnvOverrideWins) {
  ::setenv("GEACC_GIT_REV", "feedface", 1);
  EXPECT_EQ(GitRevision(), "feedface");
  ::unsetenv("GEACC_GIT_REV");
  EXPECT_NE(GitRevision(), "feedface");
}

}  // namespace
}  // namespace geacc::obs
