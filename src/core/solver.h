// Solver interface shared by all GEACC algorithms.
//
// A solver consumes an Instance and produces a feasible Arrangement plus
// per-run statistics. Construction takes SolverOptions (seed for randomized
// solvers, structural toggles for ablations); Solve() is const and
// re-entrant so one solver object can serve a whole parameter sweep.
//
// Contract for implementations:
//  * Solve() must return an arrangement for which
//    Arrangement::Validate(instance) is empty — the harness aborts on
//    violation rather than report a number for an infeasible matching.
//  * Solve() must be const with no observable shared mutable state, so
//    one solver instance may be called concurrently from multiple
//    threads (RunSweep does exactly this). With SolverOptions::threads
//    != 1 a solver may fan work out over a per-call thread pool
//    (util/thread_pool.h); the pool re-credits worker-side counters to
//    the calling thread, so per-run observability attribution (src/obs/)
//    is preserved either way.
//  * Determinism: identical (instance, SolverOptions) → identical
//    arrangement on every platform; randomized solvers draw exclusively
//    from SolverOptions::seed. The arrangement is additionally invariant
//    under SolverOptions::threads (search-effort counters under
//    threads > 1 may vary run to run where opportunistic cross-thread
//    pruning is involved; see prune_solver.h).
//
// Guarantees per algorithm (details in each header): MinCostFlow-GEACC
// 1/max c_u (Theorem 2), Greedy-GEACC 1/(1 + max c_u) (Theorem 3),
// Prune-GEACC exact (Section IV, Lemma 6 bound is admissible).

#ifndef GEACC_CORE_SOLVER_H_
#define GEACC_CORE_SOLVER_H_

#include <cstdint>
#include <string>

#include "core/arrangement.h"
#include "simd/kernels.h"

namespace geacc {

class Instance;

struct SolverOptions {
  // Seed for randomized solvers (Random-V / Random-U).
  uint64_t seed = 42;

  // Intra-solver worker lanes (util/thread_pool.h): 1 = serial (default),
  // N > 1 = a pool of N lanes, 0 = one lane per hardware thread. The
  // parallel solve is bit-identical to the serial one at any value — the
  // pool's chunked reductions are deterministic and all tie-breaking is
  // fixed — so the approximation guarantees and golden tests are
  // unaffected; only wall time changes. See DESIGN.md §10 for which
  // phases of each solver fan out.
  int threads = 1;

  // Greedy-GEACC: which k-NN index backs the neighbor cursors. "linear"
  // (batched incremental scan; works with any similarity), "kdtree"
  // (best-first tree search; needs a Euclidean-monotone similarity and
  // falls back to linear otherwise — pays off at low dimensionality),
  // "vafile", "idistance", or "idistance-paged" (the disk-backed variant:
  // identical enumeration, index memory capped by storage_budget_bytes —
  // DESIGN.md §14).
  std::string index = "linear";

  // "idistance-paged" only: buffer-pool byte budget for the on-disk key
  // tree, and the directory for its temporary page file ("" = TMPDIR or
  // /tmp). Ignored by the in-memory backends.
  uint64_t storage_budget_bytes = 16ull << 20;
  std::string storage_dir;

  // MinCostFlow-GEACC: shortest-path engine for the SSPA sweep —
  // "dijkstra" (reduced costs + potentials) or "spfa" (queue-based
  // Bellman–Ford over real costs). Identical results, different cost.
  std::string flow_algorithm = "dijkstra";

  // MinCostFlow-GEACC: resolve each user's conflicts exactly (bitmask
  // max-weight independent set over their ≤ c_u assigned events) instead
  // of the paper's greedy rule. Never worse, exponential only in c_u.
  bool exact_conflict_resolution = false;

  // Prune-GEACC ablation toggles (all true = paper's Algorithm 3/4;
  // enable_pruning=false = the "exhaustive search without pruning"
  // comparator of Fig. 6).
  bool enable_pruning = true;
  bool enable_greedy_seed = true;
  bool enable_event_ordering = true;

  // Safety valve for the exponential exact solvers: abort the search (and
  // return the best matching found so far) after this many Search-GEACC
  // invocations. 0 = unlimited.
  int64_t max_search_invocations = 0;

  // Admissible bound family for the exact solvers' branch-and-bound
  // pruning (Prune-GEACC and slot-exact; algo/bounds.h, DESIGN.md §18):
  // "lemma6" (per-event solo potentials only — the paper's bound),
  // "clique" (default: + clique-cover caps over a greedy clique partition
  // of the conflict graph), or "clique-lp" (+ an LP-relaxation b-matching
  // cap per suffix — tightest, costs one small flow solve per suffix
  // position at setup). Every mode is admissible, so the returned
  // arrangement and MaxSum are identical across modes; only the search
  // effort (nodes visited / leaf solves) changes.
  std::string bound = "clique";

  // Floating-point policy for the batched similarity kernels (DESIGN.md
  // §15.3): "strict" (default) keeps every batched result bit-identical
  // to the per-pair scalar path, so solver output is invariant under the
  // SIMD dispatch level; "fast" permits FMA contraction in the
  // solver-internal bulk evaluations (MinCostFlow pair-cost matrix,
  // Prune search tables) — last-ulp similarity differences there can
  // shift tie-breaks, so "fast" trades the bit-identity guarantee for a
  // little throughput. NN-cursor enumeration (Greedy) always runs
  // strict regardless of this knob.
  std::string fp_mode = "strict";
};

// The simd::FpMode for `options.fp_mode`; CHECK-fails on names that
// ValidateSolverOptions would reject.
simd::FpMode ResolveFpMode(const SolverOptions& options);

// Checks the string-valued fields of `options` against the known backend
// names (`index` ∈ {linear, kdtree, vafile, idistance}, `flow_algorithm` ∈
// {dijkstra, spfa}, `fp_mode` ∈ {strict, fast}, `bound` ∈ {lemma6, clique,
// clique-lp}) and that `threads` is non-negative. Returns an empty string when valid, else a description
// of the first bad field. CreateSolver() CHECK-fails on a non-empty result
// so that typos fail fast instead of surfacing mid-solve (or never, for
// solvers that ignore the field).
std::string ValidateSolverOptions(const SolverOptions& options);

struct SolverStats {
  double wall_seconds = 0.0;

  // Deterministic logical peak of the solver's own working memory
  // (excludes the input instance).
  uint64_t logical_peak_bytes = 0;

  // MinCostFlow-GEACC: number of unit augmentations (= Δmax) and the Δ at
  // which the best pre-resolution matching was found.
  int64_t flow_augmentations = 0;
  int64_t best_delta = 0;
  // Pairs deleted by the conflict-resolution step.
  int64_t conflicts_resolved = 0;

  // Greedy-GEACC heap activity.
  int64_t heap_pushes = 0;
  int64_t heap_pops = 0;

  // Prune-GEACC / exhaustive search counters (Fig. 6).
  int64_t search_invocations = 0;
  int64_t complete_searches = 0;
  int64_t prune_events = 0;
  int64_t branches_matched = 0;  // branch-1 descents (pair taken)
  // Prunes that only the conflict-aware bound achieved — the Lemma 6 /
  // per-slot-mass bound alone would have descended (algo/bounds.h).
  int64_t bound_clique_cuts = 0;
  int64_t sum_prune_depth = 0;  // mean = sum / prune_events
  int64_t max_depth = 0;        // deepest recursion reached
  bool search_truncated = false;

  double MeanPruneDepth() const {
    return prune_events == 0
               ? 0.0
               : static_cast<double>(sum_prune_depth) /
                     static_cast<double>(prune_events);
  }
};

struct SolveResult {
  Arrangement arrangement;
  SolverStats stats;
};

class Solver {
 public:
  virtual ~Solver() = default;

  // Canonical name used in tables and the registry, e.g. "greedy".
  virtual std::string Name() const = 0;

  // Produces a feasible arrangement for `instance`. Implementations fill
  // stats.wall_seconds and stats.logical_peak_bytes.
  virtual SolveResult Solve(const Instance& instance) const = 0;
};

}  // namespace geacc

#endif  // GEACC_CORE_SOLVER_H_
