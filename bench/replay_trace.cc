// Replays a mutation trace through the incremental arranger and reports
// churn/stability metrics (exp/metrics.h): repair-latency percentiles,
// reassignments per mutation, feasibility at every checked epoch, and the
// final maintained MaxSum against a from-scratch oracle solve.
//
// Without --trace the workload is generated on the fly (gen/trace_gen)
// from --events/--users/--dim/--mutations/--seed; --write saves it for
// reuse. Full re-solve cost is sampled every --sample-full-every mutations
// (snapshot + fallback solve, the work a non-incremental engine would do
// per batch), which is what the reported speedup compares against.
//
//   build/bench/replay_trace --mutations 10000 --users 5000

#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algo/solvers.h"
#include "dyn/dynamic_instance.h"
#include "dyn/incremental_arranger.h"
#include "exp/metrics.h"
#include "gen/trace_gen.h"
#include "io/trace_io.h"
#include "obs/bench_report.h"
#include "obs/stats.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/memory.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  std::string trace_path, write_path;
  int mutations = 2000, events = 50, users = 1000, dim = 8;
  int64_t seed = 42, budget = 0;
  double drift = 0.1;
  std::string index = "linear", fallback = "greedy";
  int check_every = 1, sample_full_every = 500;
  bool oracle = true, csv = false;
  std::string json_path;

  geacc::FlagSet flags;
  flags.AddString("trace", &trace_path,
                  "trace file to replay (empty: generate)");
  flags.AddString("write", &write_path,
                  "write the (generated or loaded) trace here");
  flags.AddInt("mutations", &mutations, "generated trace length");
  flags.AddInt("events", &events, "generated epoch-0 events");
  flags.AddInt("users", &users, "generated epoch-0 users");
  flags.AddInt("dim", &dim, "attribute dimensionality");
  flags.AddInt("seed", &seed, "generator seed");
  flags.AddInt("budget", &budget, "repair budget (cursor steps; 0 = off)");
  flags.AddDouble("drift", &drift,
                  "full-resolve drift threshold (<=0 disables)");
  flags.AddString("index", &index, "k-NN backend for refill cursors");
  flags.AddString("fallback", &fallback, "full re-solve solver");
  flags.AddInt("check-every", &check_every,
               "validate feasibility every K mutations (0 = never)");
  flags.AddInt("sample-full-every", &sample_full_every,
               "time a from-scratch solve every K mutations (0 = never)");
  flags.AddBool("oracle", &oracle,
                "solve the final instance from scratch for comparison");
  flags.AddBool("csv", &csv, "also dump the summary as CSV");
  flags.AddString("json", &json_path,
                  "write a geacc-bench v1 JSON report to this path");
  flags.Parse(argc, argv);

  std::optional<geacc::MutationTrace> trace;
  if (!trace_path.empty()) {
    std::string error;
    trace = geacc::ReadTraceFromFile(trace_path, &error);
    GEACC_CHECK(trace.has_value()) << trace_path << ": " << error;
  } else {
    geacc::TraceGenConfig config;
    config.initial_events = events;
    config.initial_users = users;
    config.dim = dim;
    config.num_mutations = mutations;
    config.seed = static_cast<uint64_t>(seed);
    trace = geacc::GenerateTrace(config);
  }
  if (!write_path.empty()) {
    GEACC_CHECK(geacc::WriteTraceToFile(*trace, write_path))
        << "cannot write '" << write_path << "'";
  }

  geacc::DynamicInstance instance(trace->initial);
  geacc::RepairOptions options;
  options.index = index;
  options.repair_budget = budget;
  options.drift_threshold = drift;
  options.fallback_solver = fallback;
  geacc::IncrementalArranger arranger(&instance, options);
  arranger.FullResolve();  // bootstrap the epoch-0 arrangement

  std::cout << "replaying " << trace->mutations.size() << " mutations over "
            << instance.DebugString() << "\n";

  geacc::LatencyRecorder repairs, full_solves;
  geacc::ChurnMetrics churn;
  const geacc::obs::StatsScope replay_scope;
  const geacc::WallTimer replay_wall;
  const geacc::CpuTimer replay_cpu;
  for (size_t i = 0; i < trace->mutations.size(); ++i) {
    const int64_t resolves_before = arranger.stats().full_resolves;
    arranger.Apply(trace->mutations[i]);
    const double seconds = arranger.stats().last_repair_seconds;
    // Drift-triggered full resolves are the fallback path, not the
    // incremental one; keep the two latency populations separate.
    if (arranger.stats().full_resolves > resolves_before) {
      full_solves.Record(seconds);
    } else {
      repairs.Record(seconds);
    }

    const int64_t epoch = static_cast<int64_t>(i) + 1;
    if (check_every > 0 && epoch % check_every == 0) {
      const std::string violation = arranger.Validate();
      if (!violation.empty()) {
        ++churn.infeasible_epochs;
        std::cout << "INFEASIBLE at epoch " << epoch << ": " << violation
                  << "\n";
      }
    }
    if (sample_full_every > 0 && epoch % sample_full_every == 0) {
      const geacc::WallTimer timer;
      const geacc::Instance snapshot = instance.Snapshot();
      const auto solver = geacc::CreateSolver(fallback);
      const auto result = solver->Solve(snapshot);
      full_solves.Record(timer.Seconds());
      GEACC_CHECK(result.arrangement.Validate(snapshot).empty());
    }
  }

  const double replay_wall_seconds = replay_wall.Seconds();
  const double replay_cpu_seconds = replay_cpu.Seconds();
  const geacc::obs::StatsSnapshot replay_stats = replay_scope.Harvest();

  const geacc::RepairStats& stats = arranger.stats();
  churn.mutations = stats.mutations;
  churn.reassignments = stats.assignments_added + stats.assignments_removed;
  churn.full_resolves = stats.full_resolves;
  churn.budget_exhausted = stats.budget_exhausted;
  churn.mean_repair_seconds = repairs.mean();
  churn.p50_repair_seconds = repairs.Percentile(50);
  churn.p90_repair_seconds = repairs.Percentile(90);
  churn.p99_repair_seconds = repairs.Percentile(99);
  churn.mean_full_solve_seconds = full_solves.mean();
  churn.final_max_sum = arranger.max_sum();

  if (oracle) {
    const geacc::Instance snapshot = instance.Snapshot();
    const auto solver = geacc::CreateSolver(fallback);
    churn.oracle_max_sum = solver->Solve(snapshot).arrangement.MaxSum(snapshot);
  }

  const std::string final_check = arranger.Validate();
  GEACC_CHECK(final_check.empty()) << final_check;

  std::cout << "final " << instance.DebugString() << "\n";
  std::cout << churn.DebugString() << "\n";

  geacc::Table table("Trace replay (" + index + " index, fallback " +
                     fallback + ")");
  table.SetHeader({"metric", "value"});
  table.AddRow({"mutations", geacc::StrFormat("%lld",
                                              (long long)churn.mutations)});
  table.AddRow({"reassignments/mutation",
                geacc::StrFormat("%.3f", churn.ReassignmentsPerMutation())});
  table.AddRow({"repair mean (ms)",
                geacc::StrFormat("%.4f", churn.mean_repair_seconds * 1e3)});
  table.AddRow({"repair p50 (ms)",
                geacc::StrFormat("%.4f", churn.p50_repair_seconds * 1e3)});
  table.AddRow({"repair p90 (ms)",
                geacc::StrFormat("%.4f", churn.p90_repair_seconds * 1e3)});
  table.AddRow({"repair p99 (ms)",
                geacc::StrFormat("%.4f", churn.p99_repair_seconds * 1e3)});
  table.AddRow({"full solve mean (ms)",
                geacc::StrFormat("%.2f", churn.mean_full_solve_seconds * 1e3)});
  table.AddRow({"repair speedup",
                geacc::StrFormat("%.1fx", churn.SpeedupVsFullSolve())});
  table.AddRow({"drift full-resolves",
                geacc::StrFormat("%lld", (long long)churn.full_resolves)});
  table.AddRow({"budget exhaustions",
                geacc::StrFormat("%lld", (long long)churn.budget_exhausted)});
  table.AddRow({"infeasible epochs",
                geacc::StrFormat("%lld", (long long)churn.infeasible_epochs)});
  table.AddRow({"final MaxSum", geacc::StrFormat("%.3f", churn.final_max_sum)});
  if (oracle) {
    table.AddRow({"oracle MaxSum",
                  geacc::StrFormat("%.3f", churn.oracle_max_sum)});
    table.AddRow({"maintained/oracle",
                  geacc::StrFormat("%.4f", churn.OracleRatio())});
  }
  table.Print(std::cout);
  if (csv) table.WriteCsv(std::cout);

  if (!json_path.empty()) {
    geacc::obs::BenchReport report;
    report.bench = "replay_trace";
    report.git_rev = geacc::obs::GitRevision();
    for (const auto& [name, value] : flags.Values()) {
      report.flags[name] = value;
    }
    // One point covering the whole replay (the sampled full solves
    // included): counters are the dyn.* / solver deltas over the loop.
    geacc::obs::BenchPoint point;
    point.label =
        geacc::StrFormat("replay/%zu-mutations", trace->mutations.size());
    point.solver = fallback;
    point.wall_seconds = replay_wall_seconds;
    point.cpu_seconds = replay_cpu_seconds;
    point.vm_hwm_bytes = static_cast<int64_t>(geacc::PeakRssBytes());
    point.max_sum = churn.final_max_sum;
    point.counters = replay_stats.counters;
    point.timers = replay_stats.timers;
    report.points.push_back(std::move(point));
    std::string error;
    GEACC_CHECK(report.WriteFile(json_path, &error)) << error;
    std::cout << "wrote geacc-bench v1 report: " << json_path << "\n";
  }
  return churn.infeasible_epochs == 0 ? 0 : 1;
}
