
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/brute_force_solver.cc" "src/CMakeFiles/geacc_algo.dir/algo/brute_force_solver.cc.o" "gcc" "src/CMakeFiles/geacc_algo.dir/algo/brute_force_solver.cc.o.d"
  "/root/repo/src/algo/conflict_resolution.cc" "src/CMakeFiles/geacc_algo.dir/algo/conflict_resolution.cc.o" "gcc" "src/CMakeFiles/geacc_algo.dir/algo/conflict_resolution.cc.o.d"
  "/root/repo/src/algo/greedy_solver.cc" "src/CMakeFiles/geacc_algo.dir/algo/greedy_solver.cc.o" "gcc" "src/CMakeFiles/geacc_algo.dir/algo/greedy_solver.cc.o.d"
  "/root/repo/src/algo/min_cost_flow_solver.cc" "src/CMakeFiles/geacc_algo.dir/algo/min_cost_flow_solver.cc.o" "gcc" "src/CMakeFiles/geacc_algo.dir/algo/min_cost_flow_solver.cc.o.d"
  "/root/repo/src/algo/online_greedy_solver.cc" "src/CMakeFiles/geacc_algo.dir/algo/online_greedy_solver.cc.o" "gcc" "src/CMakeFiles/geacc_algo.dir/algo/online_greedy_solver.cc.o.d"
  "/root/repo/src/algo/prune_solver.cc" "src/CMakeFiles/geacc_algo.dir/algo/prune_solver.cc.o" "gcc" "src/CMakeFiles/geacc_algo.dir/algo/prune_solver.cc.o.d"
  "/root/repo/src/algo/random_solvers.cc" "src/CMakeFiles/geacc_algo.dir/algo/random_solvers.cc.o" "gcc" "src/CMakeFiles/geacc_algo.dir/algo/random_solvers.cc.o.d"
  "/root/repo/src/algo/solvers.cc" "src/CMakeFiles/geacc_algo.dir/algo/solvers.cc.o" "gcc" "src/CMakeFiles/geacc_algo.dir/algo/solvers.cc.o.d"
  "/root/repo/src/algo/sort_all_greedy_solver.cc" "src/CMakeFiles/geacc_algo.dir/algo/sort_all_greedy_solver.cc.o" "gcc" "src/CMakeFiles/geacc_algo.dir/algo/sort_all_greedy_solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geacc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geacc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geacc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geacc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
