// VA-File (vector-approximation file) NN index — Weber, Schek & Blott,
// VLDB'98, the paper's citation [8] for σ(S).
//
// Each dimension is quantized into 2^bits cells over the data's bounding
// box; every point stores only its cell signature. Search scans the
// compact signatures computing cheap lower bounds on the true distance and
// refines candidates lazily: a point's exact distance is computed only
// when its lower bound reaches the front of the refinement queue. In the
// original disk-resident setting this trades a sequential scan of a small
// approximation file for random reads of full vectors; in-memory it still
// skips most exact distance evaluations.
//
// The incremental cursor yields exactly the linear-scan order (ties by
// ascending id): a point is emitted only once its *exact* distance is no
// greater than every remaining lower bound.

#ifndef GEACC_INDEX_VA_FILE_INDEX_H_
#define GEACC_INDEX_VA_FILE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/knn_index.h"

namespace geacc {

class VaFileIndex final : public KnnIndex {
 public:
  // `bits` per dimension (1..8); 2^bits grid cells per dimension.
  VaFileIndex(const AttributeMatrix& points,
              const SimilarityFunction& similarity, int bits = 4);

  std::string Name() const override { return "vafile"; }
  std::vector<Neighbor> Query(const double* query, int k) const override;
  std::unique_ptr<NnCursor> CreateCursor(const double* query) const override;
  uint64_t ByteEstimate() const override;

  // Fraction of points whose exact distance was computed by the last
  // Query call (diagnostic for the micro benches).
  double last_refinement_fraction() const { return last_refinement_; }

 private:
  friend class VaFileCursor;

  // Squared lower-bound distance from `query` to point i's cell box.
  // O(dim); the per-pair reference for the batched scan below.
  double CellLowerBoundSq(const double* query, int i) const;

  // Batched signature scan: out[i] = CellLowerBoundSq(query, i) for all
  // points, bit-identical (simd/kernels.h §VA) but via one per-query
  // dim × 2^bits contribution table + the blocked signature mirror, so
  // the scan is O(n × dim) table loads instead of O(n × dim) branches.
  // `out` must hold num_points() doubles. O(dim × 2^bits) setup.
  void BatchedLowerBounds(const double* query, double* out) const;

  const AttributeMatrix& points_;
  const SimilarityFunction& similarity_;
  int bits_;
  int cells_;                     // 2^bits
  std::vector<double> box_min_;   // per dim
  std::vector<double> cell_width_;  // per dim (0 for degenerate dims)
  std::vector<uint8_t> signatures_;  // n × dim cell ids, row-major
  // Blocked mirror of signatures_ (simd::kBlockRows rows per block,
  // dimension-major within a block, padded lanes hold cell 0) for the
  // batched scan. Bytes, so no alignment requirement.
  std::vector<uint8_t> sig_blocked_;
  mutable double last_refinement_ = 0.0;
};

}  // namespace geacc

#endif  // GEACC_INDEX_VA_FILE_INDEX_H_
