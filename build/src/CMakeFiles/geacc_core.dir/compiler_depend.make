# Empty compiler generated dependencies file for geacc_core.
# This may be replaced when dependencies are built.
