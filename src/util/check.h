// Invariant-checking macros.
//
// The library does not use exceptions (Google style); violated invariants are
// programming errors and abort the process with a diagnostic. GEACC_CHECK is
// always on; GEACC_DCHECK compiles away in NDEBUG builds and is meant for
// hot paths.

#ifndef GEACC_UTIL_CHECK_H_
#define GEACC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace geacc::internal_check {

// Terminates the process after printing `file:line  condition  message`.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const std::string& message) {
  std::fprintf(stderr, "GEACC_CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

// Stream sink that collects an optional explanatory message for a failed
// check, then aborts in its destructor.
class CheckMessageSink {
 public:
  CheckMessageSink(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}

  CheckMessageSink(const CheckMessageSink&) = delete;
  CheckMessageSink& operator=(const CheckMessageSink&) = delete;

  [[noreturn]] ~CheckMessageSink() {
    CheckFailed(file_, line_, condition_, stream_.str());
  }

  template <typename T>
  CheckMessageSink& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

// Allows `GEACC_CHECK(x) << "msg";` to compile to nothing when the check
// passes: `void(0)` on the success branch swallows the streamed operands via
// the Voidify trick.
struct Voidify {
  template <typename T>
  void operator&&(const T&) const {}
};

}  // namespace geacc::internal_check

#define GEACC_CHECK(condition)                                       \
  (condition) ? (void)0                                              \
              : ::geacc::internal_check::Voidify{} &&                \
                    ::geacc::internal_check::CheckMessageSink(       \
                        __FILE__, __LINE__, #condition)

#define GEACC_CHECK_OP(op, a, b) GEACC_CHECK((a)op(b))
#define GEACC_CHECK_EQ(a, b) GEACC_CHECK_OP(==, a, b)
#define GEACC_CHECK_NE(a, b) GEACC_CHECK_OP(!=, a, b)
#define GEACC_CHECK_LT(a, b) GEACC_CHECK_OP(<, a, b)
#define GEACC_CHECK_LE(a, b) GEACC_CHECK_OP(<=, a, b)
#define GEACC_CHECK_GT(a, b) GEACC_CHECK_OP(>, a, b)
#define GEACC_CHECK_GE(a, b) GEACC_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define GEACC_DCHECK(condition) GEACC_CHECK(true || (condition))
#else
#define GEACC_DCHECK(condition) GEACC_CHECK(condition)
#endif

#endif  // GEACC_UTIL_CHECK_H_
