file(REMOVE_RECURSE
  "CMakeFiles/flow_variants_test.dir/flow_variants_test.cc.o"
  "CMakeFiles/flow_variants_test.dir/flow_variants_test.cc.o.d"
  "flow_variants_test"
  "flow_variants_test.pdb"
  "flow_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
