file(REMOVE_RECURSE
  "CMakeFiles/geacc_gen.dir/gen/distributions.cc.o"
  "CMakeFiles/geacc_gen.dir/gen/distributions.cc.o.d"
  "CMakeFiles/geacc_gen.dir/gen/ebsn.cc.o"
  "CMakeFiles/geacc_gen.dir/gen/ebsn.cc.o.d"
  "CMakeFiles/geacc_gen.dir/gen/instance_stats.cc.o"
  "CMakeFiles/geacc_gen.dir/gen/instance_stats.cc.o.d"
  "CMakeFiles/geacc_gen.dir/gen/schedule.cc.o"
  "CMakeFiles/geacc_gen.dir/gen/schedule.cc.o.d"
  "CMakeFiles/geacc_gen.dir/gen/synthetic.cc.o"
  "CMakeFiles/geacc_gen.dir/gen/synthetic.cc.o.d"
  "libgeacc_gen.a"
  "libgeacc_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geacc_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
