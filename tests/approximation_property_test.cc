// Parameterized property tests of the paper's theory on random instances:
//
//   * Theorem 2:  MaxSum(MCF)    ≥ OPT / max c_u
//   * Theorem 3:  MaxSum(Greedy) ≥ OPT / (1 + max c_u)
//   * Lemma 1:    MCF is exactly optimal when CF = ∅
//   * Corollary 1: MaxSum(M_∅)   ≥ OPT
//   * Prune-GEACC ≡ Exhaustive ≡ BruteForce (exact optimum)
//   * every solver's output is feasible
//
// Instances are small enough for brute force (|V| ≤ 5, |U| ≤ 8) and swept
// over seeds × conflict densities × capacity ranges.

#include <gtest/gtest.h>

#include <tuple>

#include "algo/greedy_solver.h"
#include "algo/min_cost_flow_solver.h"
#include "algo/solvers.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

using Param = std::tuple<uint64_t, double, int>;  // seed, density, max c_u

class ApproximationTest : public ::testing::TestWithParam<Param> {
 protected:
  Instance MakeInstance() const {
    const auto& [seed, density, max_cu] = GetParam();
    return geacc::testing::SmallRandomInstance(4, 7, density, max_cu,
                                               seed * 131 + 7);
  }
};

TEST_P(ApproximationTest, ExactSolversAgree) {
  const Instance instance = MakeInstance();
  const double brute = CreateSolver("bruteforce")
                           ->Solve(instance)
                           .arrangement.MaxSum(instance);
  const double prune =
      CreateSolver("prune")->Solve(instance).arrangement.MaxSum(instance);
  const double exhaustive = CreateSolver("exhaustive")
                                ->Solve(instance)
                                .arrangement.MaxSum(instance);
  EXPECT_NEAR(prune, brute, 1e-9);
  EXPECT_NEAR(exhaustive, brute, 1e-9);
}

TEST_P(ApproximationTest, TheoremGuaranteesHold) {
  const Instance instance = MakeInstance();
  const double optimum = CreateSolver("prune")
                             ->Solve(instance)
                             .arrangement.MaxSum(instance);
  const double greedy =
      CreateSolver("greedy")->Solve(instance).arrangement.MaxSum(instance);
  const double mcf = CreateSolver("mincostflow")
                         ->Solve(instance)
                         .arrangement.MaxSum(instance);
  const int alpha = instance.max_user_capacity();
  EXPECT_GE(greedy, optimum / (1.0 + alpha) - 1e-9);
  EXPECT_GE(mcf, optimum / alpha - 1e-9);
  // Approximations never exceed the optimum.
  EXPECT_LE(greedy, optimum + 1e-9);
  EXPECT_LE(mcf, optimum + 1e-9);
}

TEST_P(ApproximationTest, ConflictObliviousUpperBound) {
  const Instance instance = MakeInstance();
  const double optimum = CreateSolver("prune")
                             ->Solve(instance)
                             .arrangement.MaxSum(instance);
  const MinCostFlowSolver mcf;
  SolverStats stats;
  const Arrangement m0 = mcf.SolveWithoutConflicts(instance, &stats);
  EXPECT_GE(m0.MaxSum(instance), optimum - 1e-9);
}

TEST_P(ApproximationTest, AllSolversFeasible) {
  const Instance instance = MakeInstance();
  for (const std::string& name : SolverNames()) {
    SolverOptions options;
    options.seed = std::get<0>(GetParam());
    const SolveResult result = CreateSolver(name, options)->Solve(instance);
    EXPECT_EQ(result.arrangement.Validate(instance), "") << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproximationTest,
    ::testing::Combine(::testing::Range<uint64_t>(0, 12),
                       ::testing::Values(0.0, 0.3, 0.7, 1.0),
                       ::testing::Values(1, 3)));

// CF = ∅: MinCostFlow-GEACC must be exactly optimal (Lemma 1).
class NoConflictOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NoConflictOptimalityTest, MinCostFlowIsExact) {
  const Instance instance =
      geacc::testing::SmallRandomInstance(4, 8, 0.0, 3, GetParam() + 900);
  const double optimum = CreateSolver("bruteforce")
                             ->Solve(instance)
                             .arrangement.MaxSum(instance);
  const double mcf = CreateSolver("mincostflow")
                         ->Solve(instance)
                         .arrangement.MaxSum(instance);
  EXPECT_NEAR(mcf, optimum, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoConflictOptimalityTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace geacc
