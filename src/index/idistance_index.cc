#include "index/idistance_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "obs/stats.h"
#include "util/check.h"
#include "util/memory.h"

namespace geacc {
namespace {

struct Candidate {
  double distance;
  int id;

  bool operator>(const Candidate& other) const {
    if (distance != other.distance) return distance > other.distance;
    return id > other.id;
  }
};

}  // namespace

class IDistanceCursor final : public NnCursor {
 public:
  IDistanceCursor(const IDistanceIndex& index, const double* query)
      : index_(index), query_(query) {
    const int pivots = index_.num_pivots();
    query_pivot_distance_.resize(pivots);
    left_.resize(pivots);
    right_.resize(pivots);
    band_start_.resize(pivots);
    band_end_.resize(pivots);
    for (int p = 0; p < pivots; ++p) {
      query_pivot_distance_[p] =
          std::sqrt(SquaredEuclideanDistance(index_.pivots_.Row(p), query_,
                                             index_.points_.dim()));
      // Band boundaries must be computed exactly as the build computes
      // keys (owner * stretch), not as band_key + stretch — the two can
      // differ by one ulp and mis-place the boundary by one element.
      const double band_key = p * index_.stretch_;
      band_start_[p] = index_.tree_.LowerBound(band_key);
      band_end_[p] = index_.tree_.LowerBound((p + 1) * index_.stretch_);
      // Both window edges start at the query's key position; the window
      // [left, right) grows outward within the band.
      auto start = index_.tree_.LowerBound(
          band_key + query_pivot_distance_[p]);
      // Clamp into the band (LowerBound may land past it).
      if (OutsideBand(start, p)) start = band_end_[p];
      left_[p] = start;
      right_[p] = start;
    }
    radius_ = index_.initial_radius_;
  }

  // Per-step counts are batched into a member and flushed once here —
  // Next() is too hot for a registry touch per call (DESIGN.md §9.1).
  ~IDistanceCursor() override {
    GEACC_STATS_ADD("index.idistance.cursor_steps", steps_);
  }

  std::optional<Neighbor> Next() override {
    ++steps_;
    while (true) {
      if (!heap_.empty() &&
          (heap_.top().distance <= covered_radius_ || FullyCovered())) {
        const Candidate top = heap_.top();
        heap_.pop();
        return Neighbor{top.id, index_.similarity_.Compute(
                                    index_.points_.Row(top.id), query_,
                                    index_.points_.dim())};
      }
      if (FullyCovered()) return std::nullopt;
      ExpandTo(radius_);
      covered_radius_ = radius_;
      radius_ *= 2.0;
    }
  }

 private:
  using TreeIt = IDistanceIndex::KeyTree::ConstIterator;

  bool OutsideBand(const TreeIt& it, int p) const {
    return it == index_.tree_.end() ||
           !(it.key() < (p + 1) * index_.stretch_);
  }

  bool FullyCovered() const {
    for (int p = 0; p < index_.num_pivots(); ++p) {
      if (left_[p] != band_start_[p] || right_[p] != band_end_[p]) {
        return false;
      }
    }
    return true;
  }

  // Widens every partition window to cover keys within ±r of the query
  // key, exact-checking newly covered entries.
  void ExpandTo(double r) {
    GEACC_STATS_ADD("index.idistance.radius_expansions", 1);
    for (int p = 0; p < index_.num_pivots(); ++p) {
      const double band_key = p * index_.stretch_;
      const double lo_key =
          band_key + std::max(0.0, query_pivot_distance_[p] - r);
      const double hi_key = band_key + query_pivot_distance_[p] + r;
      // Left edge: pull in predecessors with key >= lo_key.
      while (left_[p] != band_start_[p]) {
        TreeIt prev = left_[p];
        --prev;
        if (prev.key() < lo_key) break;
        left_[p] = prev;
        Check(prev.value());
      }
      // Right edge: consume successors with key <= hi_key.
      while (right_[p] != band_end_[p] && !(hi_key < right_[p].key())) {
        Check(right_[p].value());
        ++right_[p];
      }
    }
  }

  void Check(int id) {
    heap_.push({std::sqrt(SquaredEuclideanDistance(
                    index_.points_.Row(id), query_, index_.points_.dim())),
                id});
  }

  const IDistanceIndex& index_;
  const double* query_;
  std::vector<double> query_pivot_distance_;
  std::vector<TreeIt> left_;        // window start (inclusive)
  std::vector<TreeIt> right_;       // window end (exclusive)
  std::vector<TreeIt> band_start_;  // partition's first key
  std::vector<TreeIt> band_end_;    // one past the partition's last key
  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      heap_;
  double radius_ = 1.0;
  double covered_radius_ = -1.0;  // nothing certified yet
  int64_t steps_ = 0;
};

IDistanceIndex::IDistanceIndex(const AttributeMatrix& points,
                               const SimilarityFunction& similarity,
                               int num_pivots)
    : KnnIndex(points.rows()), points_(points), similarity_(similarity) {
  GEACC_CHECK(similarity.IsEuclideanMonotone())
      << "iDistance ordering requires a Euclidean-monotone similarity; got "
      << similarity.Name();
  GEACC_CHECK_GE(num_pivots, 1);
  const int n = points.rows();
  const int dim = points.dim();
  if (n == 0) {
    pivots_ = AttributeMatrix(0, dim);
    return;
  }
  const int pivot_count = std::max(1, std::min(num_pivots, n));

  // Farthest-point sampling: deterministic, spreads pivots over the data.
  std::vector<int> pivot_ids{0};
  std::vector<double> nearest_pivot_sq(n);
  for (int i = 0; i < n; ++i) {
    nearest_pivot_sq[i] =
        SquaredEuclideanDistance(points.Row(i), points.Row(0), dim);
  }
  while (static_cast<int>(pivot_ids.size()) < pivot_count) {
    int farthest = 0;
    for (int i = 1; i < n; ++i) {
      if (nearest_pivot_sq[i] > nearest_pivot_sq[farthest]) farthest = i;
    }
    if (nearest_pivot_sq[farthest] == 0.0) break;  // all points covered
    pivot_ids.push_back(farthest);
    for (int i = 0; i < n; ++i) {
      nearest_pivot_sq[i] = std::min(
          nearest_pivot_sq[i],
          SquaredEuclideanDistance(points.Row(i), points.Row(farthest), dim));
    }
  }

  pivots_ = AttributeMatrix(static_cast<int>(pivot_ids.size()), dim);
  for (size_t p = 0; p < pivot_ids.size(); ++p) {
    const double* src = points.Row(pivot_ids[p]);
    double* dst = pivots_.MutableRow(static_cast<int>(p));
    for (int j = 0; j < dim; ++j) dst[j] = src[j];
  }

  // Assign points to their nearest pivot; pick the stretch constant C
  // strictly above every pivot distance, then bulk-load the key tree.
  std::vector<int> owner(n);
  std::vector<double> owner_distance(n);
  double max_distance = 0.0;
  double mean_distance = 0.0;
  for (int i = 0; i < n; ++i) {
    int best = 0;
    double best_sq = std::numeric_limits<double>::max();
    for (int p = 0; p < pivots_.rows(); ++p) {
      const double d_sq =
          SquaredEuclideanDistance(points.Row(i), pivots_.Row(p), dim);
      if (d_sq < best_sq) {
        best_sq = d_sq;
        best = p;
      }
    }
    owner[i] = best;
    owner_distance[i] = std::sqrt(best_sq);
    max_distance = std::max(max_distance, owner_distance[i]);
    mean_distance += owner_distance[i];
  }
  mean_distance /= n;
  // The query key d(q, pivot) can exceed any data distance, so C must
  // dominate the query side too: queries come from the same attribute
  // space, and d(q,p) ≤ diameter ≤ 2 · max_distance is not guaranteed
  // either — clamp hi_key scans to the band instead (see cursor), and use
  // a generous constant here purely to keep bands disjoint.
  stretch_ = std::max(1.0, 4.0 * max_distance + 1.0);

  std::vector<std::pair<double, int>> entries(n);
  for (int i = 0; i < n; ++i) {
    entries[i] = {owner[i] * stretch_ + owner_distance[i], i};
  }
  std::sort(entries.begin(), entries.end());
  tree_.BulkLoad(entries);
  initial_radius_ = mean_distance > 0.0 ? mean_distance * 0.25 : 1.0;
}

std::vector<Neighbor> IDistanceIndex::Query(const double* query,
                                            int k) const {
  std::vector<Neighbor> result;
  if (k <= 0) return result;
  IDistanceCursor cursor(*this, query);
  result.reserve(std::min(k, num_points()));
  while (static_cast<int>(result.size()) < k) {
    const auto next = cursor.Next();
    if (!next) break;
    result.push_back(*next);
  }
  return result;
}

std::unique_ptr<NnCursor> IDistanceIndex::CreateCursor(
    const double* query) const {
  return std::make_unique<IDistanceCursor>(*this, query);
}

uint64_t IDistanceIndex::ByteEstimate() const {
  return pivots_.ByteEstimate() + tree_.ByteEstimate();
}

}  // namespace geacc
