#include "algo/random_solvers.h"

#include <vector>

#include "obs/stats.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/timer.h"

namespace geacc {
namespace {

// Shared acceptance logic: a pair is addable if similarity is positive,
// both sides have remaining capacity, and no conflict with u's matches.
bool Addable(const Instance& instance, const Arrangement& matching,
             const std::vector<int>& event_capacity,
             const std::vector<int>& user_capacity, EventId v, UserId u) {
  if (event_capacity[v] <= 0 || user_capacity[u] <= 0) return false;
  if (instance.Similarity(v, u) <= 0.0) return false;
  for (const EventId w : matching.EventsOf(u)) {
    if (instance.conflicts().AreConflicting(v, w)) return false;
  }
  return true;
}

SolveResult SolveRandom(const Instance& instance, uint64_t seed,
                        bool event_major) {
  WallTimer timer;
  SolverStats stats;
  const int num_events = instance.num_events();
  const int num_users = instance.num_users();
  Arrangement matching(num_events, num_users);
  Rng rng(seed);
  std::vector<int> event_capacity(num_events);
  std::vector<int> user_capacity(num_users);
  for (EventId v = 0; v < num_events; ++v) {
    event_capacity[v] = instance.event_capacity(v);
  }
  for (UserId u = 0; u < num_users; ++u) {
    user_capacity[u] = instance.user_capacity(u);
  }

  int64_t pairs_considered = 0;
  int64_t pairs_matched = 0;
  int64_t infeasible_rejections = 0;
  auto try_add = [&](EventId v, UserId u, double probability) {
    ++pairs_considered;
    if (!rng.Bernoulli(probability)) return;
    if (!Addable(instance, matching, event_capacity, user_capacity, v, u)) {
      ++infeasible_rejections;
      return;
    }
    matching.Add(v, u);
    ++pairs_matched;
    --event_capacity[v];
    --user_capacity[u];
  };

  if (event_major) {
    for (EventId v = 0; v < num_events && num_users > 0; ++v) {
      const double p = static_cast<double>(instance.event_capacity(v)) /
                       static_cast<double>(num_users);
      for (UserId u = 0; u < num_users; ++u) try_add(v, u, p);
    }
  } else {
    for (UserId u = 0; u < num_users && num_events > 0; ++u) {
      const double p = static_cast<double>(instance.user_capacity(u)) /
                       static_cast<double>(num_events);
      for (EventId v = 0; v < num_events; ++v) try_add(v, u, p);
    }
  }
  GEACC_STATS_ADD("random.pairs_considered", pairs_considered);
  GEACC_STATS_ADD("random.pairs_matched", pairs_matched);
  GEACC_STATS_ADD("random.infeasible_rejections", infeasible_rejections);
  stats.logical_peak_bytes = VectorBytes(event_capacity) +
                             VectorBytes(user_capacity) +
                             matching.ByteEstimate();
  stats.wall_seconds = timer.Seconds();
  return {std::move(matching), stats};
}

}  // namespace

SolveResult RandomVSolver::Solve(const Instance& instance) const {
  return SolveRandom(instance, options_.seed, /*event_major=*/true);
}

SolveResult RandomUSolver::Solve(const Instance& instance) const {
  return SolveRandom(instance, options_.seed, /*event_major=*/false);
}

}  // namespace geacc
