#include "io/tag_import.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "util/string_util.h"

namespace geacc {
namespace {

// Tag → multiset frequency over both sides.
std::map<std::string, int64_t> CountTags(
    const std::vector<TaggedEntity>& events,
    const std::vector<TaggedEntity>& users) {
  std::map<std::string, int64_t> counts;
  for (const auto* side : {&events, &users}) {
    for (const TaggedEntity& entity : *side) {
      for (const std::string& tag : entity.tags) ++counts[tag];
    }
  }
  return counts;
}

// Normalized count vector over the vocabulary (paper Section V).
void FillAttributeRow(const TaggedEntity& entity,
                      const std::unordered_map<std::string, int>& tag_index,
                      double* row, int dim) {
  for (int j = 0; j < dim; ++j) row[j] = 0.0;
  if (entity.tags.empty()) return;
  for (const std::string& tag : entity.tags) {
    const auto it = tag_index.find(tag);
    if (it != tag_index.end()) row[it->second] += 1.0;
  }
  const double total = static_cast<double>(entity.tags.size());
  for (int j = 0; j < dim; ++j) row[j] /= total;
}

}  // namespace

std::vector<std::string> SelectTopTags(
    const std::vector<TaggedEntity>& events,
    const std::vector<TaggedEntity>& users, int top_k) {
  GEACC_CHECK_GE(top_k, 1);
  const std::map<std::string, int64_t> counts = CountTags(events, users);
  std::vector<std::pair<std::string, int64_t>> ranked(counts.begin(),
                                                      counts.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;  // lexicographic tie-break
            });
  if (static_cast<int>(ranked.size()) > top_k) ranked.resize(top_k);
  std::vector<std::string> vocabulary;
  vocabulary.reserve(ranked.size());
  for (const auto& [tag, count] : ranked) vocabulary.push_back(tag);
  return vocabulary;
}

Instance BuildInstanceFromTags(
    const std::vector<TaggedEntity>& events,
    const std::vector<TaggedEntity>& users,
    const std::vector<std::pair<EventId, EventId>>& conflicts, int top_k) {
  const std::vector<std::string> vocabulary =
      SelectTopTags(events, users, top_k);
  const int dim = std::max<int>(1, static_cast<int>(vocabulary.size()));
  std::unordered_map<std::string, int> tag_index;
  for (size_t j = 0; j < vocabulary.size(); ++j) {
    tag_index.emplace(vocabulary[j], static_cast<int>(j));
  }

  AttributeMatrix event_attributes(static_cast<int>(events.size()), dim);
  std::vector<int> event_capacities(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    FillAttributeRow(events[i], tag_index,
                     event_attributes.MutableRow(static_cast<int>(i)), dim);
    event_capacities[i] = events[i].capacity;
  }
  AttributeMatrix user_attributes(static_cast<int>(users.size()), dim);
  std::vector<int> user_capacities(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    FillAttributeRow(users[i], tag_index,
                     user_attributes.MutableRow(static_cast<int>(i)), dim);
    user_capacities[i] = users[i].capacity;
  }
  ConflictGraph graph(static_cast<int>(events.size()));
  for (const auto& [a, b] : conflicts) graph.AddConflict(a, b);

  // Normalized fractions live in [0, 1]: Eq. (1) with T = 1.
  return Instance(std::move(event_attributes), std::move(event_capacities),
                  std::move(user_attributes), std::move(user_capacities),
                  std::move(graph),
                  std::make_unique<EuclideanSimilarity>(1.0));
}

std::optional<std::vector<TaggedEntity>> ParseTaggedCsv(
    const std::string& text, std::string* error) {
  std::vector<TaggedEntity> entities;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const size_t comma = trimmed.find(',');
    if (comma == std::string_view::npos) {
      if (error != nullptr) {
        *error = StrFormat("line %d: expected '<capacity>,<tags>'",
                           line_number);
      }
      return std::nullopt;
    }
    const auto capacity = ParseInt(trimmed.substr(0, comma));
    if (!capacity || *capacity < 1) {
      if (error != nullptr) {
        *error = StrFormat("line %d: bad capacity", line_number);
      }
      return std::nullopt;
    }
    TaggedEntity entity;
    entity.capacity = static_cast<int>(*capacity);
    for (const std::string& raw :
         Split(trimmed.substr(comma + 1), ';')) {
      const std::string_view tag = Trim(raw);
      if (!tag.empty()) entity.tags.emplace_back(tag);
    }
    entities.push_back(std::move(entity));
  }
  return entities;
}

std::optional<Instance> LoadTaggedInstance(const std::string& events_path,
                                           const std::string& users_path,
                                           const std::string& conflicts_path,
                                           int top_k, std::string* error) {
  auto read_file = [&](const std::string& path,
                       std::string* contents) -> bool {
    std::ifstream is(path);
    if (!is) {
      if (error != nullptr) *error = "cannot open '" + path + "'";
      return false;
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    *contents = buffer.str();
    return true;
  };

  std::string events_text, users_text;
  if (!read_file(events_path, &events_text)) return std::nullopt;
  if (!read_file(users_path, &users_text)) return std::nullopt;
  const auto events = ParseTaggedCsv(events_text, error);
  if (!events) return std::nullopt;
  const auto users = ParseTaggedCsv(users_text, error);
  if (!users) return std::nullopt;

  std::vector<std::pair<EventId, EventId>> conflicts;
  if (!conflicts_path.empty()) {
    std::string conflicts_text;
    if (!read_file(conflicts_path, &conflicts_text)) return std::nullopt;
    std::istringstream stream(conflicts_text);
    std::string line;
    int line_number = 0;
    while (std::getline(stream, line)) {
      ++line_number;
      const std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      const std::vector<std::string> parts =
          Split(std::string(trimmed), ',');
      const auto a = parts.size() == 2 ? ParseInt(parts[0]) : std::nullopt;
      const auto b = parts.size() == 2 ? ParseInt(parts[1]) : std::nullopt;
      if (!a || !b || *a < 0 || *b < 0 ||
          *a >= static_cast<int64_t>(events->size()) ||
          *b >= static_cast<int64_t>(events->size()) || *a == *b) {
        if (error != nullptr) {
          *error = StrFormat("conflicts line %d: bad pair", line_number);
        }
        return std::nullopt;
      }
      conflicts.emplace_back(static_cast<EventId>(*a),
                             static_cast<EventId>(*b));
    }
  }
  return BuildInstanceFromTags(*events, *users, conflicts, top_k);
}

}  // namespace geacc
