// Prune-GEACC (paper Algorithms 3–4, Section IV) — exact branch-and-bound.
//
// Pair states (matched / unmatched) are enumerated recursively: events in
// non-increasing s_v·c_v order (s_v = similarity of v's nearest user),
// each event's users in non-increasing similarity order. Before descending,
// Lemma 6's upper bound
//
//   sum_max = MaxSum(M_visited) + sum_remain + sim(v, u_next)·c_v_remain
//
// is compared against the best complete matching found so far (seeded with
// Greedy-GEACC's result); branches that cannot beat it are pruned. When
// the conflict graph is non-empty and SolverOptions::bound requests it,
// sum_remain is tightened (outer min) by the conflict-aware suffix bounds
// of algo/bounds.h — clique-cover caps over a greedy clique partition,
// optionally an LP-relaxation b-matching cap.
//
// Bound-vs-incumbent contract (shared with slot-exact; algo/bounds.h): a
// branch is pruned only when its admissible bound falls more than
// algo::kBoundEps (1e-9) below the incumbent. The slack absorbs the
// conflict-aware bounds' floating-point reassociation; the incumbent
// update stays strict `>`, so a branch whose bound merely ties the
// incumbent may be descended but can never displace it — with
// enable_greedy_seed=false the returned arrangement and MaxSum are
// bit-identical to the exhaustive search's, and with the seed the value
// matches to the arrangement level (a seed that already attains the
// optimum is kept as-is).
//
// SolverOptions toggles:
//   enable_pruning=false        → the "exhaustive search without pruning"
//                                 comparator of Fig. 6 (still respects
//                                 feasibility, never prunes on the bound);
//   enable_greedy_seed=false    → start from the empty matching;
//   enable_event_ordering=false → visit events in id order (ablation);
//   bound                       → "lemma6" | "clique" | "clique-lp"
//                                 (admissible bound family; solver.h);
//   max_search_invocations      → safety valve for the exponential search.
//
// Guarantee: exact — every bound level is admissible (it never
// underestimates the best completion of a branch), so pruning cannot cut
// every optimal leaf and the returned arrangement attains the optimum
// MaxSum (Section IV). Complexity: O(2^P) branch nodes worst case over
// the P positive-similarity pairs (the ordering and bound make the
// observed node count orders of magnitude smaller, Fig. 6); memory is
// O(depth) = O(Σ min(c_v, |U|)) for the recursion spine.
//
// Thread-safety: Solve() is const and re-entrant; the mutable search
// context lives on the call stack. Counters reported:
// prune.nodes_visited, prune.nodes_pruned, prune.complete_searches,
// prune.branches_matched, prune.bound.clique_cuts (prunes only the
// conflict-aware tightening achieved; exhaustive mode reports the same
// set).
//
// Statistics (search invocations, complete searches, prune events with
// depth, max depth) feed the Fig. 6 benches.

#ifndef GEACC_ALGO_PRUNE_SOLVER_H_
#define GEACC_ALGO_PRUNE_SOLVER_H_

#include <string>

#include "core/instance.h"
#include "core/solver.h"

namespace geacc {

class PruneSolver final : public Solver {
 public:
  explicit PruneSolver(SolverOptions options = {}) : options_(options) {}

  std::string Name() const override {
    return options_.enable_pruning ? "prune" : "exhaustive";
  }
  SolveResult Solve(const Instance& instance) const override;

 private:
  SolverOptions options_;
};

}  // namespace geacc

#endif  // GEACC_ALGO_PRUNE_SOLVER_H_
