// Client bindings for the arrangement service (DESIGN.md §11): one
// interface, two transports.
//
// ServiceClient is the call surface a consumer programs against —
// ping, the three reads, stats, and mutate. InProcessClient binds it
// straight to an ArrangementService in the same process (zero copies
// beyond the reply vectors; the embedding story). SocketClient speaks
// the svc/wire framing to a ServiceServer over TCP, one synchronous
// request/response at a time.
//
// Status discipline: kOverloaded surfaces the service's backpressure
// verbatim (retry or shed — the request was not accepted); kServerError
// is a well-formed kError reply (bad ids, unparsable mutation — see
// last_error()); kProtocolError means the reply itself was malformed and
// kNetworkError that the transport failed — after either of those a
// SocketClient must be reconnected before reuse.
//
// Thread-safety: neither implementation is thread-safe; give each thread
// its own client (bench/loadgen does exactly that).

#ifndef GEACC_SVC_CLIENT_H_
#define GEACC_SVC_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dyn/mutation.h"
#include "svc/service.h"
#include "svc/snapshot.h"

namespace geacc::svc {

struct WireRequest;
struct WireResponse;
struct ShardTopologyStats;

enum class RpcStatus {
  kOk = 0,
  kOverloaded,      // service queue full; mutation not accepted
  kServerError,     // server replied kError (see last_error())
  kProtocolError,   // malformed reply; reconnect before reuse
  kNetworkError,    // connect/read/write failure; reconnect before reuse
};

const char* RpcStatusName(RpcStatus status);

class ServiceClient {
 public:
  virtual ~ServiceClient() = default;

  virtual RpcStatus Ping() = 0;
  virtual RpcStatus GetAssignments(UserId user, std::vector<EventId>* out) = 0;
  virtual RpcStatus GetAttendees(EventId event, std::vector<UserId>* out) = 0;
  virtual RpcStatus TopKEvents(UserId user, int k,
                               std::vector<ScoredEvent>* out) = 0;
  virtual RpcStatus GetStats(ServiceStatsView* out) = 0;

  // Submits `mutation`; on kOk, `*ticket` names it for read-your-writes:
  // poll GetStats() until applied_seq >= ticket (or, in process, use
  // ArrangementService::WaitForTicket).
  virtual RpcStatus Mutate(const Mutation& mutation, int64_t* ticket) = 0;

  // ----- shard protocol (src/shard/, DESIGN.md §16) -----

  // Unfiltered scoring edges for users in [first_user, first_user +
  // user_count) of the server's slot space (clamped server-side).
  virtual RpcStatus Candidates(UserId first_user, int user_count,
                               std::vector<ScoredCandidate>* out) = 0;

  // Replaces the server's arrangement with `pairs` (slot ids, admission
  // order) and `max_sum_bits` as the maintained sum; `*ticket` as Mutate.
  virtual RpcStatus InstallArrangement(
      const std::vector<std::pair<EventId, UserId>>& pairs,
      uint64_t max_sum_bits, int64_t* ticket) = 0;

  // Coordinator-only: per-shard breakdown. A plain shard replies kError.
  virtual RpcStatus GetShardStats(ShardTopologyStats* out) = 0;

  // Diagnostic for the most recent non-kOk result.
  const std::string& last_error() const { return last_error_; }

 protected:
  std::string last_error_;
};

// Direct binding to a service in the same process. `service` must outlive
// the client.
class InProcessClient : public ServiceClient {
 public:
  explicit InProcessClient(ArrangementService* service) : service_(service) {}

  RpcStatus Ping() override;
  RpcStatus GetAssignments(UserId user, std::vector<EventId>* out) override;
  RpcStatus GetAttendees(EventId event, std::vector<UserId>* out) override;
  RpcStatus TopKEvents(UserId user, int k,
                       std::vector<ScoredEvent>* out) override;
  RpcStatus GetStats(ServiceStatsView* out) override;
  RpcStatus Mutate(const Mutation& mutation, int64_t* ticket) override;
  RpcStatus Candidates(UserId first_user, int user_count,
                       std::vector<ScoredCandidate>* out) override;
  RpcStatus InstallArrangement(
      const std::vector<std::pair<EventId, UserId>>& pairs,
      uint64_t max_sum_bits, int64_t* ticket) override;
  RpcStatus GetShardStats(ShardTopologyStats* out) override;

 private:
  ArrangementService* service_;
};

// TCP transport against a ServiceServer. Connect() first; every call is
// one request frame + one response frame on the same socket.
class SocketClient : public ServiceClient {
 public:
  SocketClient() = default;
  ~SocketClient() override;

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  bool Connect(const std::string& host, int port,
               std::string* error = nullptr);
  bool connected() const { return fd_ >= 0; }
  void Disconnect();

  RpcStatus Ping() override;
  RpcStatus GetAssignments(UserId user, std::vector<EventId>* out) override;
  RpcStatus GetAttendees(EventId event, std::vector<UserId>* out) override;
  RpcStatus TopKEvents(UserId user, int k,
                       std::vector<ScoredEvent>* out) override;
  RpcStatus GetStats(ServiceStatsView* out) override;
  RpcStatus Mutate(const Mutation& mutation, int64_t* ticket) override;
  RpcStatus Candidates(UserId first_user, int user_count,
                       std::vector<ScoredCandidate>* out) override;
  RpcStatus InstallArrangement(
      const std::vector<std::pair<EventId, UserId>>& pairs,
      uint64_t max_sum_bits, int64_t* ticket) override;
  RpcStatus GetShardStats(ShardTopologyStats* out) override;

 private:
  // Sends `request` and decodes the reply into `response`; translates
  // transport/framing failures into the status discipline above.
  RpcStatus RoundTrip(const WireRequest& request, WireResponse* response);

  int fd_ = -1;
};

}  // namespace geacc::svc

#endif  // GEACC_SVC_CLIENT_H_
