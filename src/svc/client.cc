#include "svc/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "io/trace_io.h"
#include "svc/wire.h"
#include "util/string_util.h"

namespace geacc::svc {
namespace {

bool ReadFull(int fd, void* data, size_t size) {
  auto* bytes = static_cast<char*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = read(fd, bytes + done, size - done);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

bool WriteFull(int fd, const void* data, size_t size) {
  const auto* bytes = static_cast<const char*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = send(fd, bytes + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

const char* RpcStatusName(RpcStatus status) {
  switch (status) {
    case RpcStatus::kOk:
      return "ok";
    case RpcStatus::kOverloaded:
      return "overloaded";
    case RpcStatus::kServerError:
      return "server_error";
    case RpcStatus::kProtocolError:
      return "protocol_error";
    case RpcStatus::kNetworkError:
      return "network_error";
  }
  return "unknown";
}

// ----- InProcessClient -----

RpcStatus InProcessClient::Ping() { return RpcStatus::kOk; }

RpcStatus InProcessClient::GetAssignments(UserId user,
                                          std::vector<EventId>* out) {
  if (service_->GetAssignments(user, out) != SvcStatus::kOk) {
    last_error_ = StrFormat("user id %d out of range", user);
    return RpcStatus::kServerError;
  }
  return RpcStatus::kOk;
}

RpcStatus InProcessClient::GetAttendees(EventId event,
                                        std::vector<UserId>* out) {
  if (service_->GetAttendees(event, out) != SvcStatus::kOk) {
    last_error_ = StrFormat("event id %d out of range", event);
    return RpcStatus::kServerError;
  }
  return RpcStatus::kOk;
}

RpcStatus InProcessClient::TopKEvents(UserId user, int k,
                                      std::vector<ScoredEvent>* out) {
  if (service_->TopKEvents(user, k, out) != SvcStatus::kOk) {
    last_error_ = StrFormat("bad top-k query (user %d, k %d)", user, k);
    return RpcStatus::kServerError;
  }
  return RpcStatus::kOk;
}

RpcStatus InProcessClient::GetStats(ServiceStatsView* out) {
  *out = service_->Stats();
  return RpcStatus::kOk;
}

RpcStatus InProcessClient::Mutate(const Mutation& mutation, int64_t* ticket) {
  const SubmitResult result = service_->Submit(mutation);
  switch (result.status) {
    case SvcStatus::kOk:
      if (ticket != nullptr) *ticket = result.ticket;
      return RpcStatus::kOk;
    case SvcStatus::kOverloaded:
      last_error_ = "service overloaded";
      return RpcStatus::kOverloaded;
    default:
      last_error_ = std::string("submit failed: ") +
                    SvcStatusName(result.status);
      return RpcStatus::kServerError;
  }
}

RpcStatus InProcessClient::Candidates(UserId first_user, int user_count,
                                      std::vector<ScoredCandidate>* out) {
  if (service_->Candidates(first_user, user_count, out) != SvcStatus::kOk) {
    last_error_ = StrFormat("bad candidates query (first %d, count %d)",
                            first_user, user_count);
    return RpcStatus::kServerError;
  }
  return RpcStatus::kOk;
}

RpcStatus InProcessClient::InstallArrangement(
    const std::vector<std::pair<EventId, UserId>>& pairs,
    uint64_t max_sum_bits, int64_t* ticket) {
  const SubmitResult result = service_->SubmitInstall(pairs, max_sum_bits);
  switch (result.status) {
    case SvcStatus::kOk:
      if (ticket != nullptr) *ticket = result.ticket;
      return RpcStatus::kOk;
    case SvcStatus::kOverloaded:
      last_error_ = "service overloaded";
      return RpcStatus::kOverloaded;
    default:
      last_error_ = std::string("install failed: ") +
                    SvcStatusName(result.status);
      return RpcStatus::kServerError;
  }
}

RpcStatus InProcessClient::GetShardStats(ShardTopologyStats* /*out*/) {
  last_error_ = "shard stats: not a coordinator";
  return RpcStatus::kServerError;
}

// ----- SocketClient -----

SocketClient::~SocketClient() { Disconnect(); }

void SocketClient::Disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

bool SocketClient::Connect(const std::string& host, int port,
                           std::string* error) {
  Disconnect();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string port_str = StrFormat("%d", port);
  const int rc = getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result);
  if (rc != 0) {
    if (error != nullptr) {
      *error = StrFormat("resolve %s: %s", host.c_str(), gai_strerror(rc));
    }
    return false;
  }
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    const int fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      break;
    }
    close(fd);
  }
  freeaddrinfo(result);
  if (fd_ < 0) {
    if (error != nullptr) {
      *error = StrFormat("connect %s:%d: %s", host.c_str(), port,
                         std::strerror(errno));
    }
    return false;
  }
  return true;
}

RpcStatus SocketClient::RoundTrip(const WireRequest& request,
                                  WireResponse* response) {
  if (fd_ < 0) {
    last_error_ = "not connected";
    return RpcStatus::kNetworkError;
  }
  const std::string frame = EncodeRequestFrame(request);
  if (frame.size() > kMaxFrameBytes + 4) {
    last_error_ = StrFormat("request frame of %zu bytes exceeds the %u-byte "
                            "wire cap", frame.size(),
                            static_cast<unsigned>(kMaxFrameBytes));
    return RpcStatus::kProtocolError;
  }
  if (!WriteFull(fd_, frame.data(), frame.size())) {
    last_error_ = "write failed";
    Disconnect();
    return RpcStatus::kNetworkError;
  }
  uint8_t prefix[4];
  if (!ReadFull(fd_, prefix, sizeof(prefix))) {
    last_error_ = "read failed";
    Disconnect();
    return RpcStatus::kNetworkError;
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(prefix[i]) << (8 * i);
  }
  if (length < 2 || length > kMaxFrameBytes) {
    last_error_ = StrFormat("reply frame length %u out of range",
                            static_cast<unsigned>(length));
    Disconnect();
    return RpcStatus::kProtocolError;
  }
  std::string body(length, '\0');
  if (!ReadFull(fd_, body.data(), body.size())) {
    last_error_ = "read failed";
    Disconnect();
    return RpcStatus::kNetworkError;
  }
  std::string decode_error;
  if (!DecodeResponse(reinterpret_cast<const uint8_t*>(body.data()),
                      body.size(), response, &decode_error)) {
    last_error_ = "bad reply: " + decode_error;
    Disconnect();
    return RpcStatus::kProtocolError;
  }
  if (response->type == MsgType::kError) {
    last_error_ = response->message;
    return RpcStatus::kServerError;
  }
  return RpcStatus::kOk;
}

namespace {

// A reply decoded fine but is not the type this call expects.
RpcStatus UnexpectedReply(MsgType got, std::string* last_error) {
  *last_error = StrFormat("unexpected reply type %s", MsgTypeName(got));
  return RpcStatus::kProtocolError;
}

}  // namespace

RpcStatus SocketClient::Ping() {
  WireRequest request;
  request.type = MsgType::kPing;
  WireResponse response;
  const RpcStatus status = RoundTrip(request, &response);
  if (status != RpcStatus::kOk) return status;
  if (response.type != MsgType::kPong) {
    return UnexpectedReply(response.type, &last_error_);
  }
  return RpcStatus::kOk;
}

RpcStatus SocketClient::GetAssignments(UserId user,
                                       std::vector<EventId>* out) {
  WireRequest request;
  request.type = MsgType::kGetAssignments;
  request.id = user;
  WireResponse response;
  const RpcStatus status = RoundTrip(request, &response);
  if (status != RpcStatus::kOk) return status;
  if (response.type != MsgType::kIdList) {
    return UnexpectedReply(response.type, &last_error_);
  }
  *out = std::move(response.ids);
  return RpcStatus::kOk;
}

RpcStatus SocketClient::GetAttendees(EventId event, std::vector<UserId>* out) {
  WireRequest request;
  request.type = MsgType::kGetAttendees;
  request.id = event;
  WireResponse response;
  const RpcStatus status = RoundTrip(request, &response);
  if (status != RpcStatus::kOk) return status;
  if (response.type != MsgType::kIdList) {
    return UnexpectedReply(response.type, &last_error_);
  }
  *out = std::move(response.ids);
  return RpcStatus::kOk;
}

RpcStatus SocketClient::TopKEvents(UserId user, int k,
                                   std::vector<ScoredEvent>* out) {
  WireRequest request;
  request.type = MsgType::kTopK;
  request.id = user;
  request.k = k;
  WireResponse response;
  const RpcStatus status = RoundTrip(request, &response);
  if (status != RpcStatus::kOk) return status;
  if (response.type != MsgType::kScoredList) {
    return UnexpectedReply(response.type, &last_error_);
  }
  *out = std::move(response.scored);
  return RpcStatus::kOk;
}

RpcStatus SocketClient::GetStats(ServiceStatsView* out) {
  WireRequest request;
  request.type = MsgType::kStats;
  WireResponse response;
  const RpcStatus status = RoundTrip(request, &response);
  if (status != RpcStatus::kOk) return status;
  if (response.type != MsgType::kStatsReply) {
    return UnexpectedReply(response.type, &last_error_);
  }
  *out = response.stats;
  return RpcStatus::kOk;
}

RpcStatus SocketClient::Mutate(const Mutation& mutation, int64_t* ticket) {
  WireRequest request;
  request.type = MsgType::kMutate;
  request.payload = FormatMutationLine(mutation);
  WireResponse response;
  const RpcStatus status = RoundTrip(request, &response);
  if (status != RpcStatus::kOk) return status;
  if (response.type == MsgType::kOverloaded) {
    last_error_ = "service overloaded";
    return RpcStatus::kOverloaded;
  }
  if (response.type != MsgType::kMutateAck) {
    return UnexpectedReply(response.type, &last_error_);
  }
  if (ticket != nullptr) *ticket = response.ticket;
  return RpcStatus::kOk;
}

RpcStatus SocketClient::Candidates(UserId first_user, int user_count,
                                   std::vector<ScoredCandidate>* out) {
  WireRequest request;
  request.type = MsgType::kCandidates;
  request.id = first_user;
  request.k = user_count;
  WireResponse response;
  const RpcStatus status = RoundTrip(request, &response);
  if (status != RpcStatus::kOk) return status;
  if (response.type != MsgType::kCandidateList) {
    return UnexpectedReply(response.type, &last_error_);
  }
  *out = std::move(response.candidates);
  return RpcStatus::kOk;
}

RpcStatus SocketClient::InstallArrangement(
    const std::vector<std::pair<EventId, UserId>>& pairs,
    uint64_t max_sum_bits, int64_t* ticket) {
  WireRequest request;
  request.type = MsgType::kInstallArrangement;
  request.pairs = pairs;
  request.max_sum_bits = max_sum_bits;
  WireResponse response;
  const RpcStatus status = RoundTrip(request, &response);
  if (status != RpcStatus::kOk) return status;
  if (response.type == MsgType::kOverloaded) {
    last_error_ = "service overloaded";
    return RpcStatus::kOverloaded;
  }
  if (response.type != MsgType::kMutateAck) {
    return UnexpectedReply(response.type, &last_error_);
  }
  if (ticket != nullptr) *ticket = response.ticket;
  return RpcStatus::kOk;
}

RpcStatus SocketClient::GetShardStats(ShardTopologyStats* out) {
  WireRequest request;
  request.type = MsgType::kShardStats;
  WireResponse response;
  const RpcStatus status = RoundTrip(request, &response);
  if (status != RpcStatus::kOk) return status;
  if (response.type != MsgType::kShardStatsReply) {
    return UnexpectedReply(response.type, &last_error_);
  }
  *out = std::move(response.shard_stats);
  return RpcStatus::kOk;
}

}  // namespace geacc::svc
