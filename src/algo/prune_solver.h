// Prune-GEACC (paper Algorithms 3–4, Section IV) — exact branch-and-bound.
//
// Pair states (matched / unmatched) are enumerated recursively: events in
// non-increasing s_v·c_v order (s_v = similarity of v's nearest user),
// each event's users in non-increasing similarity order. Before descending,
// Lemma 6's upper bound
//
//   sum_max = MaxSum(M_visited) + sum_remain + sim(v, u_next)·c_v_remain
//
// is compared against the best complete matching found so far (seeded with
// Greedy-GEACC's result); branches that cannot beat it are pruned.
//
// SolverOptions toggles:
//   enable_pruning=false        → the "exhaustive search without pruning"
//                                 comparator of Fig. 6 (still respects
//                                 feasibility, never prunes on the bound);
//   enable_greedy_seed=false    → start from the empty matching;
//   enable_event_ordering=false → visit events in id order (ablation);
//   max_search_invocations      → safety valve for the exponential search.
//
// Guarantee: exact — the Lemma 6 bound is admissible (it never
// underestimates the best completion of a branch), so pruning cannot cut
// every optimal leaf and the returned arrangement attains the optimum
// MaxSum (Section IV). Complexity: O(2^P) branch nodes worst case over
// the P positive-similarity pairs (the ordering and bound make the
// observed node count orders of magnitude smaller, Fig. 6); memory is
// O(depth) = O(Σ min(c_v, |U|)) for the recursion spine.
//
// Thread-safety: Solve() is const and re-entrant; the mutable search
// context lives on the call stack. Counters reported:
// prune.nodes_visited, prune.nodes_pruned, prune.complete_searches,
// prune.branches_matched (exhaustive mode reports the same set).
//
// Statistics (search invocations, complete searches, prune events with
// depth, max depth) feed the Fig. 6 benches.

#ifndef GEACC_ALGO_PRUNE_SOLVER_H_
#define GEACC_ALGO_PRUNE_SOLVER_H_

#include <string>

#include "core/instance.h"
#include "core/solver.h"

namespace geacc {

class PruneSolver final : public Solver {
 public:
  explicit PruneSolver(SolverOptions options = {}) : options_(options) {}

  std::string Name() const override {
    return options_.enable_pruning ? "prune" : "exhaustive";
  }
  SolveResult Solve(const Instance& instance) const override;

 private:
  SolverOptions options_;
};

}  // namespace geacc

#endif  // GEACC_ALGO_PRUNE_SOLVER_H_
