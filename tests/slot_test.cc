// Tests for the time-slotted scenario (src/slot/, DESIGN.md §17): the
// slotted model and its derived-conflict primitives, the joint audit,
// the three joint solvers, and the seeded generator.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/arrangement.h"
#include "core/types.h"
#include "slot/slot_solvers.h"
#include "slot/slotted.h"
#include "slot/slotted_gen.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

// Two events × two users with hand-picked similarities, two overlapping
// slots (so any two scheduled events conflict), and complementary user
// availability: u0 can only attend slot 0, u1 only slot 1. The joint
// optimum is slotting {0, 1} matching v0–u0 (0.9) and v1–u1 (0.7).
slot::SlottedInstance TinySlotted() {
  Instance base = geacc::testing::MakeTableInstance(
      {{0.9, 0.5}, {0.8, 0.7}}, {1, 1}, {1, 1}, {});
  slot::SlotTable slots;
  slots.windows = {TimeWindow{0.0, 2.0, 0.0, 0.0},
                   TimeWindow{1.0, 3.0, 0.0, 0.0}};
  slots.speed_kmph = 0.0;
  return slot::SlottedInstance{std::move(base), std::move(slots),
                               {0b11u, 0b11u}, {0b01u, 0b10u}};
}

slot::SlottedGenConfig SmallGenConfig(uint64_t seed) {
  slot::SlottedGenConfig config;
  config.num_events = 5;
  config.num_users = 12;
  config.dim = 3;
  config.num_slots = 3;
  config.availability_count = DistributionSpec::Uniform(1.0, 3.0);
  config.seed = seed;
  return config;
}

TEST(SlotTable, ConflictingFollowsWindowOverlap) {
  slot::SlotTable table;
  table.windows = {TimeWindow{0.0, 2.0, 0.0, 0.0},
                   TimeWindow{1.0, 3.0, 0.0, 0.0},
                   TimeWindow{2.0, 4.0, 0.0, 0.0}};
  table.speed_kmph = 0.0;
  EXPECT_TRUE(table.Conflicting(0, 1));   // overlap
  EXPECT_FALSE(table.Conflicting(0, 2));  // shared endpoint, [a, b)
  EXPECT_TRUE(table.Conflicting(1, 2));
  // Two events in the same (non-degenerate) slot always conflict.
  EXPECT_TRUE(table.Conflicting(1, 1));
}

TEST(SlottedInstance, ValidateAcceptsWellFormed) {
  EXPECT_EQ(TinySlotted().Validate(), "");
}

TEST(SlottedInstance, ValidateRejectsStructuralErrors) {
  {
    slot::SlottedInstance s = TinySlotted();
    s.slots.windows.clear();
    EXPECT_NE(s.Validate(), "");  // S = 0
  }
  {
    slot::SlottedInstance s = TinySlotted();
    s.event_allowed[1] = 0;
    EXPECT_NE(s.Validate(), "");  // event with no allowed slot
  }
  {
    slot::SlottedInstance s = TinySlotted();
    s.event_allowed[0] = 0b100;  // bit 2 with S = 2
    EXPECT_NE(s.Validate(), "");
  }
  {
    slot::SlottedInstance s = TinySlotted();
    s.user_availability[0] = 0b1000;
    EXPECT_NE(s.Validate(), "");
  }
  {
    slot::SlottedInstance s = TinySlotted();
    s.user_availability.pop_back();
    EXPECT_NE(s.Validate(), "");  // mask vector size mismatch
  }
  {
    slot::SlottedInstance s = TinySlotted();
    s.slots.windows[0].end_hours = -1.0;
    EXPECT_NE(s.Validate(), "");  // inverted window
  }
}

TEST(SlottedInstance, UserMayBeFullyUnavailable) {
  slot::SlottedInstance s = TinySlotted();
  s.user_availability[0] = 0;  // allowed: the user just matches nothing
  EXPECT_EQ(s.Validate(), "");
}

TEST(DeriveConflicts, EdgesOnlyBetweenScheduledOverlappingSlots) {
  const slot::SlottedInstance s = TinySlotted();
  {
    // Both in slot 0: same-slot conflict.
    const ConflictGraph g = slot::DeriveConflicts(s, {0, 0});
    EXPECT_TRUE(g.AreConflicting(0, 1));
  }
  {
    // Slots 0 and 1 overlap in time.
    const ConflictGraph g = slot::DeriveConflicts(s, {0, 1});
    EXPECT_TRUE(g.AreConflicting(0, 1));
  }
  {
    // Unscheduled events get no edges.
    const ConflictGraph g = slot::DeriveConflicts(s, {0, kInvalidSlot});
    EXPECT_FALSE(g.AreConflicting(0, 1));
  }
}

TEST(MakeSubInstance, MasksUnavailableAndUnscheduledPairs) {
  const slot::SlottedInstance s = TinySlotted();
  {
    // v0 in slot 0, v1 in slot 1: each event only admits "its" user.
    const Instance sub = slot::MakeSubInstance(s, {0, 1});
    EXPECT_EQ(sub.Similarity(0, 0), s.base.Similarity(0, 0));
    EXPECT_EQ(sub.Similarity(0, 1), 0.0);  // u1 not available in slot 0
    EXPECT_EQ(sub.Similarity(1, 0), 0.0);  // u0 not available in slot 1
    EXPECT_EQ(sub.Similarity(1, 1), s.base.Similarity(1, 1));
  }
  {
    // Unscheduled v1 admits nobody.
    const Instance sub = slot::MakeSubInstance(s, {0, kInvalidSlot});
    EXPECT_EQ(sub.Similarity(1, 0), 0.0);
    EXPECT_EQ(sub.Similarity(1, 1), 0.0);
    EXPECT_EQ(sub.Similarity(0, 0), s.base.Similarity(0, 0));
  }
  {
    const std::vector<uint8_t> mask = slot::PairMask(s, {0, 1});
    ASSERT_EQ(mask.size(), 4u);
    EXPECT_EQ(mask[0], 1);  // (v0, u0)
    EXPECT_EQ(mask[1], 0);  // (v0, u1)
    EXPECT_EQ(mask[2], 0);  // (v1, u0)
    EXPECT_EQ(mask[3], 1);  // (v1, u1)
  }
}

TEST(AuditSlotted, AcceptsTheJointOptimum) {
  const slot::SlottedInstance s = TinySlotted();
  Arrangement arrangement(2, 2);
  arrangement.Add(0, 0);
  arrangement.Add(1, 1);
  EXPECT_EQ(slot::AuditSlotted(s, {0, 1}, arrangement), "");
}

TEST(AuditSlotted, RejectsJointViolations) {
  const slot::SlottedInstance s = TinySlotted();
  {
    // Slot not in the event's allowed set.
    slot::SlottedInstance narrow = TinySlotted();
    narrow.event_allowed[0] = 0b10;
    Arrangement a(2, 2);
    EXPECT_NE(slot::AuditSlotted(narrow, {0, 1}, a), "");
  }
  {
    // Matched event left unscheduled.
    Arrangement a(2, 2);
    a.Add(0, 0);
    EXPECT_NE(slot::AuditSlotted(s, {kInvalidSlot, kInvalidSlot}, a), "");
  }
  {
    // u1 is not available in slot 0.
    Arrangement a(2, 2);
    a.Add(0, 1);
    EXPECT_NE(slot::AuditSlotted(s, {0, 1}, a), "");
  }
  {
    // One user in two events whose slots overlap: derived conflict.
    slot::SlottedInstance wide = TinySlotted();
    wide.user_availability = {0b11u, 0b11u};
    Arrangement a(2, 2);
    a.AddUnchecked(0, 0);
    a.AddUnchecked(1, 0);
    EXPECT_NE(slot::AuditSlotted(wide, {0, 1}, a), "");
  }
}

TEST(SlotSolvers, RegistryRoundTrip) {
  for (const std::string& name : slot::SlotSolverNames()) {
    const auto solver = slot::CreateSlotSolver(name);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_EQ(solver->Name(), name);
  }
  EXPECT_EQ(slot::CreateSlotSolver("slot-nope"), nullptr);
  EXPECT_EQ(slot::CreateSlotSolver("greedy"), nullptr);  // base registry name
}

TEST(SlotSolvers, ExactFindsTheHandComputedOptimum) {
  const slot::SlottedInstance s = TinySlotted();
  const auto exact = slot::CreateSlotSolver("slot-exact");
  const slot::SlotSolveResult result = exact->Solve(s);
  EXPECT_EQ(slot::AuditSlotted(s, result.slotting, result.arrangement), "");
  EXPECT_DOUBLE_EQ(result.max_sum, 0.9 + 0.7);
  ASSERT_EQ(result.slotting.size(), 2u);
  EXPECT_EQ(result.slotting[0], 0);
  EXPECT_EQ(result.slotting[1], 1);
  EXPECT_TRUE(result.arrangement.Contains(0, 0));
  EXPECT_TRUE(result.arrangement.Contains(1, 1));
  EXPECT_GE(result.leaf_solves, 1);
  EXPECT_GE(result.slottings_considered, result.leaf_solves);
}

TEST(SlotSolvers, AllSolversProduceJointlyFeasibleResults) {
  const slot::SlottedInstance s = slot::GenerateSlotted(SmallGenConfig(19));
  for (const std::string& name : slot::SlotSolverNames()) {
    const auto solver = slot::CreateSlotSolver(name);
    const slot::SlotSolveResult result = solver->Solve(s);
    EXPECT_EQ(slot::AuditSlotted(s, result.slotting, result.arrangement), "")
        << name;
    EXPECT_GE(result.slottings_considered, 1) << name;
    // The reported sum must match the arrangement it came with.
    double recomputed = 0.0;
    for (const auto& [v, u] : result.arrangement.SortedPairs()) {
      recomputed += s.base.Similarity(v, u);
    }
    EXPECT_EQ(result.max_sum, recomputed) << name;
  }
}

TEST(SlotSolvers, ExactDominatesTheHeuristics) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const slot::SlottedInstance s = slot::GenerateSlotted(SmallGenConfig(seed));
    const auto exact = slot::CreateSlotSolver("slot-exact")->Solve(s);
    const auto greedy = slot::CreateSlotSolver("slot-greedy")->Solve(s);
    const auto sweep = slot::CreateSlotSolver("slot-mcf-sweep")->Solve(s);
    EXPECT_GE(exact.max_sum, greedy.max_sum - 1e-9) << "seed " << seed;
    EXPECT_GE(exact.max_sum, sweep.max_sum - 1e-9) << "seed " << seed;
  }
}

TEST(SlotSolvers, DeterministicAcrossRuns) {
  const slot::SlottedInstance s = slot::GenerateSlotted(SmallGenConfig(23));
  for (const std::string& name : slot::SlotSolverNames()) {
    const auto solver = slot::CreateSlotSolver(name);
    const slot::SlotSolveResult a = solver->Solve(s);
    const slot::SlotSolveResult b = solver->Solve(s);
    EXPECT_EQ(a.slotting, b.slotting) << name;
    EXPECT_EQ(a.arrangement.SortedPairs(), b.arrangement.SortedPairs()) << name;
    EXPECT_EQ(a.max_sum, b.max_sum) << name;
    EXPECT_EQ(a.slottings_considered, b.slottings_considered) << name;
  }
}

TEST(GenerateSlotted, ProducesAValidInstanceWithinBounds) {
  const slot::SlottedGenConfig config = SmallGenConfig(7);
  const slot::SlottedInstance s = slot::GenerateSlotted(config);
  EXPECT_EQ(s.Validate(), "");
  EXPECT_EQ(s.base.num_events(), config.num_events);
  EXPECT_EQ(s.base.num_users(), config.num_users);
  EXPECT_EQ(s.num_slots(), config.num_slots);
  // The base conflict graph is empty: conflicts come from slottings.
  for (int v = 0; v < s.base.num_events(); ++v) {
    for (int w = v + 1; w < s.base.num_events(); ++w) {
      EXPECT_FALSE(s.base.conflicts().AreConflicting(v, w));
    }
  }
  const uint32_t full = (uint32_t{1} << config.num_slots) - 1;
  for (const uint32_t mask : s.event_allowed) {
    EXPECT_NE(mask, 0u);
    EXPECT_EQ(mask & ~full, 0u);
  }
  for (const uint32_t mask : s.user_availability) {
    EXPECT_NE(mask, 0u);  // availability_count is clamped to ≥ 1
    EXPECT_EQ(mask & ~full, 0u);
  }
}

TEST(GenerateSlotted, IsDeterministicPerSeed) {
  const slot::SlottedInstance a = slot::GenerateSlotted(SmallGenConfig(31));
  const slot::SlottedInstance b = slot::GenerateSlotted(SmallGenConfig(31));
  const slot::SlottedInstance c = slot::GenerateSlotted(SmallGenConfig(32));
  EXPECT_EQ(a.event_allowed, b.event_allowed);
  EXPECT_EQ(a.user_availability, b.user_availability);
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (int i = 0; i < a.slots.size(); ++i) {
    EXPECT_EQ(a.slots.windows[i].start_hours, b.slots.windows[i].start_hours);
    EXPECT_EQ(a.slots.windows[i].end_hours, b.slots.windows[i].end_hours);
  }
  EXPECT_TRUE(a.event_allowed != c.event_allowed ||
              a.user_availability != c.user_availability)
      << "seed 32 reproduced seed 31's slot structure";
}

}  // namespace
}  // namespace geacc
