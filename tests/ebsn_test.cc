// Tests for the EBSN (Meetup-like) dataset simulator — the Table II
// substitute. The important properties are the ones the paper's pipeline
// relies on: L1-normalized tag vectors, Table II shapes, determinism, and
// group-induced correlation (users are more similar to events of their own
// community than to random events).

#include <gtest/gtest.h>

#include "gen/ebsn.h"

namespace geacc {
namespace {

TEST(Ebsn, CityPresetsMatchTableII) {
  const EbsnConfig vancouver = EbsnCityPreset("vancouver");
  EXPECT_EQ(vancouver.num_events, 225);
  EXPECT_EQ(vancouver.num_users, 2012);
  const EbsnConfig auckland = EbsnCityPreset("auckland");
  EXPECT_EQ(auckland.num_events, 37);
  EXPECT_EQ(auckland.num_users, 569);
  const EbsnConfig singapore = EbsnCityPreset("singapore");
  EXPECT_EQ(singapore.num_events, 87);
  EXPECT_EQ(singapore.num_users, 1500);
}

TEST(Ebsn, UnknownCityDies) {
  EXPECT_DEATH(EbsnCityPreset("atlantis"), "unknown EBSN city");
}

TEST(Ebsn, GeneratesValidInstance) {
  EbsnConfig config = EbsnCityPreset("auckland");
  config.seed = 5;
  const Instance instance = GenerateEbsn(config);
  EXPECT_EQ(instance.num_events(), 37);
  EXPECT_EQ(instance.num_users(), 569);
  EXPECT_EQ(instance.dim(), 20);
  EXPECT_EQ(instance.Validate(), "");
  EXPECT_NEAR(instance.conflicts().Density(), 0.25, 0.02);
}

TEST(Ebsn, AttributesAreL1NormalizedFractions) {
  EbsnConfig config = EbsnCityPreset("auckland");
  const Instance instance = GenerateEbsn(config);
  for (const AttributeMatrix* matrix :
       {&instance.event_attributes(), &instance.user_attributes()}) {
    for (int i = 0; i < matrix->rows(); ++i) {
      double sum = 0.0;
      for (int j = 0; j < matrix->dim(); ++j) {
        const double x = matrix->At(i, j);
        ASSERT_GE(x, 0.0);
        ASSERT_LE(x, 1.0);
        sum += x;
      }
      ASSERT_NEAR(sum, 1.0, 1e-9) << "row " << i;
    }
  }
}

TEST(Ebsn, DeterministicPerSeed) {
  EbsnConfig config = EbsnCityPreset("singapore");
  config.seed = 21;
  const Instance a = GenerateEbsn(config);
  const Instance b = GenerateEbsn(config);
  for (int v = 0; v < a.num_events(); v += 13) {
    for (int u = 0; u < a.num_users(); u += 97) {
      ASSERT_DOUBLE_EQ(a.Similarity(v, u), b.Similarity(v, u));
    }
  }
}

TEST(Ebsn, TagPopularityIsSkewed) {
  // With Zipf-skewed popularity, tag 0 must carry far more total mass than
  // the least popular tag.
  EbsnConfig config = EbsnCityPreset("vancouver");
  config.seed = 3;
  const Instance instance = GenerateEbsn(config);
  std::vector<double> mass(instance.dim(), 0.0);
  const auto& users = instance.user_attributes();
  for (int i = 0; i < users.rows(); ++i) {
    for (int j = 0; j < users.dim(); ++j) mass[j] += users.At(i, j);
  }
  const double top = *std::max_element(mass.begin(), mass.end());
  const double bottom = *std::min_element(mass.begin(), mass.end());
  EXPECT_GT(top, 4.0 * (bottom + 1e-9));
}

TEST(Ebsn, GroupStructureCreatesInterestClusters) {
  // The mean best-event similarity of a user should clearly exceed the
  // mean all-events similarity — the clustering the paper's recommender
  // setting presumes.
  EbsnConfig config = EbsnCityPreset("auckland");
  config.seed = 17;
  const Instance instance = GenerateEbsn(config);
  double mean_best = 0.0, mean_all = 0.0;
  for (UserId u = 0; u < instance.num_users(); ++u) {
    double best = 0.0, sum = 0.0;
    for (EventId v = 0; v < instance.num_events(); ++v) {
      const double s = instance.Similarity(v, u);
      best = std::max(best, s);
      sum += s;
    }
    mean_best += best;
    mean_all += sum / instance.num_events();
  }
  mean_best /= instance.num_users();
  mean_all /= instance.num_users();
  EXPECT_GT(mean_best, mean_all + 0.02);
}

TEST(Ebsn, CapacityDistributionsApplied) {
  EbsnConfig config = EbsnCityPreset("auckland");
  config.event_capacity = DistributionSpec::Normal(25.0, 12.5);
  config.user_capacity = DistributionSpec::Normal(2.0, 1.0);
  const Instance instance = GenerateEbsn(config);
  for (EventId v = 0; v < instance.num_events(); ++v) {
    ASSERT_GE(instance.event_capacity(v), 1);
  }
  for (UserId u = 0; u < instance.num_users(); ++u) {
    ASSERT_GE(instance.user_capacity(u), 1);
    ASSERT_LE(instance.user_capacity(u), 8);  // N(2,1) clamped, ~6σ bound
  }
}

TEST(Ebsn, SummarizeReportsShape) {
  EbsnConfig config = EbsnCityPreset("auckland");
  const Instance instance = GenerateEbsn(config);
  const EbsnStats stats = SummarizeEbsn("auckland", instance);
  EXPECT_EQ(stats.city, "auckland");
  EXPECT_EQ(stats.num_events, 37);
  EXPECT_EQ(stats.num_users, 569);
  EXPECT_GT(stats.mean_user_tags, 1.0);
  EXPECT_LE(stats.mean_user_tags, 20.0);
  EXPECT_NEAR(stats.conflict_density, 0.25, 0.02);
}

}  // namespace
}  // namespace geacc
