// Conflict-aware admissible bounds for the exact solvers (DESIGN.md §18).
//
// Prune-GEACC's Lemma 6 bound sums each remaining event's solo potential
// s_v·c_v and ignores the conflict graph entirely; slot-exact's
// per-(event, slot) mass bound had the same gap for events forced into
// overlapping slots. Conflict/clique cuts are the classical fix
// (Montemanni & Smith, arXiv:2503.19685 / arXiv:2506.04274): events that
// pairwise conflict compete for the *same* users — each user can attend
// at most one event of a clique — so a clique's joint contribution is
// capped well below the sum of its members' solo potentials.
//
// The bounds hierarchy, loosest to tightest (every level admissible):
//
//   Lemma 6      Σ_v  event_bound[v]               (solo potentials)
//   clique-cover Σ_Q  min(Σ_{v∈Q} event_bound[v],  (greedy clique
//                      TopK per-user best sims)     partition Q of the
//                                                   conflict graph)
//   LP           min(clique-cover, max-weight      (conflict-free
//                 conflict-free b-matching value)   b-matching = the LP
//                                                   relaxation optimum,
//                                                   constraint matrix is
//                                                   totally unimodular)
//
// All three are *suffix* bounds: for a branch-and-bound visiting events
// in a fixed order L, suffix[k] bounds the total contribution of events
// L[k..) in ANY feasible completion (already-consumed user capacity is
// ignored, which only overestimates — admissibility is preserved).
//
// Bound-vs-incumbent contract (shared by PruneSolver and slot-exact): a
// subtree is pruned only when its admissible bound falls more than
// kBoundEps below the incumbent (`bound + kBoundEps < incumbent`). The
// slack absorbs floating-point reassociation — the bound accumulates in
// a different order than the leaf sums, so an exactly-optimal subtree's
// computed bound can sit a few ulps below its true value — while the
// incumbent-update rule stays strict `>`, so a subtree whose bound merely
// ties the incumbent may be descended but can never replace it: returned
// arrangements and MaxSum values are bit-identical to the exhaustive
// oracle's.
//
// Determinism: the clique partition is a serial first-fit over events in
// id order, and every bound is a pure function of (instance, mode) —
// identical across thread counts and platforms.

#ifndef GEACC_ALGO_BOUNDS_H_
#define GEACC_ALGO_BOUNDS_H_

#include <string>
#include <vector>

#include "core/conflict_graph.h"
#include "core/types.h"

namespace geacc {
namespace algo {

// Slack for the bound-vs-incumbent comparison in the exact solvers (see
// the contract above). Matches the verify campaign's similarity epsilon.
inline constexpr double kBoundEps = 1e-9;

// Admissible bound family, selected by SolverOptions::bound.
enum class BoundMode {
  kLemma6,    // "lemma6": per-event solo potentials only
  kClique,    // "clique": + clique-cover caps (default)
  kCliqueLp,  // "clique-lp": + LP-relaxation (b-matching) cap per suffix
};

// Parses SolverOptions::bound; CHECK-fails on names ValidateSolverOptions
// would reject.
BoundMode ParseBoundMode(const std::string& name);

// A partition of [0, num_events) into cliques of the conflict graph:
// every pair within a clique conflicts. Greedy first-fit over events in
// id order (event v joins the first clique it conflicts with entirely,
// else opens a new one), so the partition is deterministic and cliques
// hold ascending ids in creation order.
struct CliquePartition {
  std::vector<std::vector<EventId>> cliques;
  std::vector<int> clique_of;  // event id -> index into `cliques`

  int num_cliques() const { return static_cast<int>(cliques.size()); }
};

CliquePartition GreedyCliquePartition(const ConflictGraph& conflicts);

// Inputs for the suffix-bound computation. All pointers borrowed; rows of
// `sim` are events, entries ≤ 0 are unmatchable (the solvers never admit
// non-positive-similarity pairs).
struct BoundInputs {
  int num_events = 0;
  int num_users = 0;
  const double* sim = nullptr;  // row-major |V|×|U|
  // Admissible cap on each event's solo contribution: Lemma 6's s_v·c_v
  // for the flat problem, the capacity-clipped best slot mass for
  // slot-exact. The degenerate-case guarantee (empty conflict graph ⇒
  // bound ≡ Lemma 6) is stated against exactly these values.
  const double* event_bound = nullptr;
  const int* event_capacity = nullptr;
  // Required for kCliqueLp (the b-matching respects user capacities);
  // ignored by the other modes.
  const int* user_capacity = nullptr;
  const ConflictGraph* conflicts = nullptr;
  // Event visit order L of the branch-and-bound; suffix k covers
  // order[k..num_events).
  const EventId* order = nullptr;
};

// suffix[k] = admissible upper bound on the total contribution of events
// order[k..num_events) in any feasible arrangement (size num_events + 1,
// suffix[num_events] = 0). kClique with an empty conflict graph is
// bit-identical to the Lemma 6 suffix sums; kClique and kCliqueLp are
// everywhere ≤ the Lemma 6 value by construction.
std::vector<double> ComputeSuffixBounds(const BoundInputs& inputs,
                                        BoundMode mode,
                                        const CliquePartition& partition);

// Max-weight conflict-free b-matching value over events
// order[suffix_start..) — the LP-relaxation optimum of the remaining
// subproblem with the conflict constraints dropped (the bipartite
// b-matching polytope is integral). Exposed for the admissibility tests;
// ComputeSuffixBounds(kCliqueLp) calls this per suffix.
double BMatchingBound(const BoundInputs& inputs, int suffix_start);

}  // namespace algo
}  // namespace geacc

#endif  // GEACC_ALGO_BOUNDS_H_
