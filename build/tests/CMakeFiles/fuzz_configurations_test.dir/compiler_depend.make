# Empty compiler generated dependencies file for fuzz_configurations_test.
# This may be replaced when dependencies are built.
