file(REMOVE_RECURSE
  "CMakeFiles/fig4_distribution.dir/fig4_distribution.cc.o"
  "CMakeFiles/fig4_distribution.dir/fig4_distribution.cc.o.d"
  "fig4_distribution"
  "fig4_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
