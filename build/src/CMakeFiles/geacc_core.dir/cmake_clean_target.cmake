file(REMOVE_RECURSE
  "libgeacc_core.a"
)
