# Empty compiler generated dependencies file for geacc_flow.
# This may be replaced when dependencies are built.
