# Empty dependencies file for conference_scheduler.
# This may be replaced when dependencies are built.
