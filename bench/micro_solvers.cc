// Microbenchmarks: solver cost on Table III-shaped instances, including
// the DESIGN.md ablations — heap-frontier Greedy vs sort-all Greedy
// (identical output, different cost) and Prune-GEACC with its warm start
// and event ordering toggled.

#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include <memory>
#include <string>

#include "algo/solvers.h"
#include "gen/synthetic.h"

namespace geacc {
namespace {

Instance MediumInstance(int events, int users, uint64_t seed) {
  SyntheticConfig config;
  config.num_events = events;
  config.num_users = users;
  config.seed = seed;
  return GenerateSynthetic(config);
}

void BM_Solver(benchmark::State& state, const std::string& name) {
  const int events = static_cast<int>(state.range(0));
  const int users = static_cast<int>(state.range(1));
  const Instance instance = MediumInstance(events, users, 5);
  const auto solver = CreateSolver(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver->Solve(instance).arrangement.size());
  }
}

// Prune-GEACC ablations on an exactly-solvable size.
void BM_PruneAblation(benchmark::State& state, bool greedy_seed,
                      bool ordering) {
  SyntheticConfig config;
  config.num_events = 4;
  config.num_users = 10;
  config.event_capacity = DistributionSpec::Uniform(1.0, 10.0);
  config.user_capacity = DistributionSpec::Uniform(1.0, 2.0);
  config.seed = 9;
  const Instance instance = GenerateSynthetic(config);
  SolverOptions options;
  options.enable_greedy_seed = greedy_seed;
  options.enable_event_ordering = ordering;
  // Ablated configurations can blow up; cap so the bench stays bounded
  // (the capped counter still ranks the configurations).
  options.max_search_invocations = 20'000'000;
  const auto solver = CreateSolver("prune", options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver->Solve(instance).stats.search_invocations);
  }
}

void RegisterAll() {
  for (const char* name :
       {"greedy", "greedy-sortall", "mincostflow", "random-v", "random-u"}) {
    auto* bench = benchmark::RegisterBenchmark(
        (std::string("BM_Solver/") + name).c_str(),
        [name](benchmark::State& s) { BM_Solver(s, name); });
    bench->Args({20, 200})->Args({100, 1000});
    if (std::string(name) != "mincostflow") bench->Args({200, 5000});
  }
  benchmark::RegisterBenchmark("BM_PruneAblation/seed_on_order_on",
                               [](benchmark::State& s) {
                                 BM_PruneAblation(s, true, true);
                               });
  benchmark::RegisterBenchmark("BM_PruneAblation/seed_off_order_on",
                               [](benchmark::State& s) {
                                 BM_PruneAblation(s, false, true);
                               });
  benchmark::RegisterBenchmark("BM_PruneAblation/seed_on_order_off",
                               [](benchmark::State& s) {
                                 BM_PruneAblation(s, true, false);
                               });
  benchmark::RegisterBenchmark("BM_PruneAblation/seed_off_order_off",
                               [](benchmark::State& s) {
                                 BM_PruneAblation(s, false, false);
                               });
}

const bool kRegistered = (RegisterAll(), true);

}  // namespace
}  // namespace geacc

GEACC_MICRO_MAIN("micro_solvers")
