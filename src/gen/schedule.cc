#include "gen/schedule.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace geacc {

bool EventsConflict(const ScheduledEvent& a, const ScheduledEvent& b,
                    double speed_kmph) {
  // Interval overlap ([start, end) semantics: touching endpoints do not
  // overlap).
  if (a.start_hours < b.end_hours && b.start_hours < a.end_hours) return true;
  if (speed_kmph <= 0.0) return false;
  // Gap between the earlier event's end and the later event's start.
  const ScheduledEvent& first = a.end_hours <= b.start_hours ? a : b;
  const ScheduledEvent& second = a.end_hours <= b.start_hours ? b : a;
  const double gap_hours = second.start_hours - first.end_hours;
  const double distance_km = std::hypot(a.x_km - b.x_km, a.y_km - b.y_km);
  return distance_km / speed_kmph > gap_hours;
}

ConflictGraph ConflictsFromSchedule(const std::vector<ScheduledEvent>& events,
                                    double speed_kmph) {
  const int n = static_cast<int>(events.size());
  ConflictGraph graph(n);
  for (int a = 0; a < n; ++a) {
    GEACC_CHECK_LE(events[a].start_hours, events[a].end_hours)
        << "event " << a << " ends before it starts";
    for (int b = a + 1; b < n; ++b) {
      if (EventsConflict(events[a], events[b], speed_kmph)) {
        graph.AddConflict(a, b);
      }
    }
  }
  return graph;
}

std::vector<ScheduledEvent> RandomSchedule(int count, double horizon_hours,
                                           double min_duration_hours,
                                           double max_duration_hours,
                                           double city_km, Rng& rng) {
  GEACC_CHECK_GE(count, 0);
  GEACC_CHECK_LE(min_duration_hours, max_duration_hours);
  std::vector<ScheduledEvent> events;
  events.reserve(count);
  for (int i = 0; i < count; ++i) {
    ScheduledEvent event;
    const double duration =
        rng.UniformReal(min_duration_hours, max_duration_hours);
    event.start_hours =
        rng.UniformReal(0.0, std::max(0.0, horizon_hours - duration));
    event.end_hours = event.start_hours + duration;
    event.x_km = rng.UniformReal(0.0, city_km);
    event.y_km = rng.UniformReal(0.0, city_km);
    events.push_back(event);
  }
  return events;
}

}  // namespace geacc
