#include "util/rng.h"

#include <cmath>

namespace geacc {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GEACC_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw = NextUint64();
  while (draw >= limit) draw = NextUint64();
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::UniformReal(double lo, double hi) {
  GEACC_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box–Muller; draw u1 away from zero to keep log() finite.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Rng::Normal(double mean, double stddev) {
  GEACC_CHECK_GE(stddev, 0.0);
  return mean + stddev * NextGaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork(uint64_t stream) const {
  uint64_t sm = state_[0] ^ Rotl(state_[3], 13) ^ (stream * 0x9e3779b97f4a7c15ULL);
  return Rng(SplitMix64(sm));
}

}  // namespace geacc
