// Fig. 3, column 3: MaxSum / time / memory vs d ∈ {2, 5, 10, 15, 20};
// all other parameters Table III defaults.
//
// Expected shape (paper): MaxSum decreases with d (the attribute space gets
// sparser, average distances grow); d barely affects time and memory.

#include <vector>

#include "bench/bench_common.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  geacc::bench::CommonFlags common;
  geacc::FlagSet flags;
  common.Register(flags);
  flags.Parse(argc, argv);
  geacc::bench::ReportContext report("fig3_dimensionality", flags, common);

  geacc::SweepConfig config;
  config.title = "Fig 3 col 3: varying dimensionality d";
  config.solvers =
      common.SolverList({"greedy", "mincostflow", "random-v", "random-u"});
  config.repetitions = common.reps;
  config.threads = common.threads;
  config.audit = common.selfcheck;
  common.ApplySolverOptions(&config.solver_options);
  config.seed = static_cast<uint64_t>(common.seed);

  std::vector<geacc::SweepPoint> points;
  for (const int dim : {2, 5, 10, 15, 20}) {
    points.push_back({std::to_string(dim), [dim](uint64_t seed) {
                        geacc::SyntheticConfig synth;
                        synth.dim = dim;
                        synth.seed = seed;
                        return geacc::GenerateSynthetic(synth);
                      }});
  }

  const geacc::SweepResult result = geacc::RunSweep(config, points);
  geacc::bench::EmitSweep(config, result, "d", common.csv);
  report.AddSweep(config, result);
  report.Write();
  return 0;
}
