// Load generator for geacc_serve (DESIGN.md §11).
//
// Drives a running arrangement service over TCP with N client threads,
// each on its own connection, issuing a configurable mix of reads
// (get_assignments / get_attendees / top_k / stats) and mutations. Two
// pacing modes:
//
//   --mode closed   each thread fires its next request the moment the
//                   previous reply lands (throughput test)
//   --mode open     requests are scheduled at --rate QPS total; latency is
//                   measured from the *scheduled* send time, so queueing
//                   delay counts (no coordinated omission)
//
// Reports aggregate throughput and p50/p95/p99 latency, and with --json
// writes a `geacc-bench v1` report whose point carries the new optional
// "latency" object (src/obs/bench_report.h). Overloaded mutate replies are
// counted (svc backpressure working as designed), not errors. Exit is
// non-zero on connect failures or any protocol/network error.
//
//   loadgen --port 7411 --threads 4 --duration_s 5 --json report.json
//
// Fleet mode (--fleet M, DESIGN.md §16): spawns M loadgen *processes*
// against a geacc_coord front-end, unions every child's raw latency
// samples for exact end-to-end percentiles, sums their counters, and
// pulls the coordinator's per-shard RPC view over kShardStats — the
// report's point then carries the optional "shards" section, which CI
// gates with `validate_report --require-shards`. Child processes get
// distinct seeds and, in open mode, an equal slice of --rate.
//
//   loadgen --port 7400 --fleet 4 --threads 4 --duration_s 8 \
//       --json fleet.json

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dyn/mutation.h"
#include "exp/metrics.h"
#include "obs/bench_report.h"
#include "obs/json.h"
#include "svc/client.h"
#include "svc/wire.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using geacc::LatencyRecorder;
using geacc::Mutation;
using geacc::Rng;
using geacc::svc::RpcStatus;
using geacc::svc::ScoredEvent;
using geacc::svc::ServiceStatsView;
using geacc::svc::SocketClient;

struct OpMix {
  double assignments = 0.40;
  double attendees = 0.30;
  double topk = 0.20;
  double stats = 0.05;
  // remainder = mutate
};

struct WorkerResult {
  int64_t requests = 0;
  int64_t assignments = 0;
  int64_t attendees = 0;
  int64_t topk = 0;
  int64_t stats = 0;
  int64_t mutates = 0;
  int64_t overloads = 0;
  int64_t server_errors = 0;
  int64_t protocol_errors = 0;  // protocol + network failures
  LatencyRecorder latency;
};

// Random mutation shaped like trace_gen churn: mostly capacity jitter plus
// some user add/remove, against the id ranges the bootstrap stats report.
Mutation RandomMutation(Rng& rng, const ServiceStatsView& shape, int dim) {
  const double pick = rng.UniformReal(0.0, 1.0);
  if (pick < 0.4) {
    return Mutation::SetUserCapacity(
        rng.UniformInt(0, shape.user_slots - 1), rng.UniformInt(1, 4));
  }
  if (pick < 0.7) {
    return Mutation::SetEventCapacity(
        rng.UniformInt(0, shape.event_slots - 1), rng.UniformInt(1, 50));
  }
  if (pick < 0.9) {
    std::vector<double> attributes(dim);
    for (double& a : attributes) a = rng.UniformReal(0.0, 10000.0);
    return Mutation::AddUser(std::move(attributes), rng.UniformInt(1, 4));
  }
  return Mutation::RemoveUser(rng.UniformInt(0, shape.user_slots - 1));
}

void RunWorker(const std::string& host, int port, double duration_s,
               bool open_loop, double thread_rate, const OpMix& mix, int topk,
               const ServiceStatsView& shape, int dim, uint64_t seed,
               WorkerResult* result) {
  SocketClient client;
  std::string error;
  if (!client.Connect(host, port, &error)) {
    std::fprintf(stderr, "loadgen: %s\n", error.c_str());
    ++result->protocol_errors;
    return;
  }
  Rng rng(seed);
  std::vector<int32_t> ids;
  std::vector<ScoredEvent> scored;
  ServiceStatsView stats;

  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(duration_s));
  const std::chrono::duration<double> interval(
      thread_rate > 0.0 ? 1.0 / thread_rate : 0.0);
  auto scheduled = start;

  while (std::chrono::steady_clock::now() < deadline) {
    if (open_loop) {
      std::this_thread::sleep_until(scheduled);
    }
    const auto issue_time =
        open_loop ? scheduled : std::chrono::steady_clock::now();

    const double pick = rng.UniformReal(0.0, 1.0);
    RpcStatus status;
    if (pick < mix.assignments) {
      status = client.GetAssignments(
          rng.UniformInt(0, shape.user_slots - 1), &ids);
      ++result->assignments;
    } else if (pick < mix.assignments + mix.attendees) {
      status = client.GetAttendees(
          rng.UniformInt(0, shape.event_slots - 1), &ids);
      ++result->attendees;
    } else if (pick < mix.assignments + mix.attendees + mix.topk) {
      status = client.TopKEvents(rng.UniformInt(0, shape.user_slots - 1),
                                 topk, &scored);
      ++result->topk;
    } else if (pick < mix.assignments + mix.attendees + mix.topk + mix.stats) {
      status = client.GetStats(&stats);
      ++result->stats;
    } else {
      status = client.Mutate(RandomMutation(rng, shape, dim), nullptr);
      ++result->mutates;
    }
    ++result->requests;
    result->latency.Record(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - issue_time)
                               .count());

    switch (status) {
      case RpcStatus::kOk:
        break;
      case RpcStatus::kOverloaded:
        ++result->overloads;
        break;
      case RpcStatus::kServerError:
        // Expected under churn: a read can race a remove_user the service
        // applied between our stats snapshot and now — but out-of-range
        // ids never are, so count and report.
        ++result->server_errors;
        break;
      default:
        ++result->protocol_errors;
        std::fprintf(stderr, "loadgen: %s: %s\n", RpcStatusName(status),
                     client.last_error().c_str());
        return;  // connection is gone; stop this worker
    }
    scheduled += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(interval);
  }
}

// Everything a fleet child needs to inherit from the parent invocation.
struct FleetConfig {
  std::string host;
  int port = 0;
  int threads = 0;
  double duration_s = 0.0;
  std::string mode;
  double rate = 0.0;
  int topk = 0;
  double mutate_fraction = 0.0;
  int dim = 0;
  std::string label;
  int64_t seed = 0;
  int fleet = 0;
  std::string json;
};

std::string SelfExecutable() {
  char buffer[4096];
  const ssize_t n = readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return "";
  buffer[n] = '\0';
  return buffer;
}

// Spawns `config.fleet` child loadgen processes against the coordinator,
// merges their reports and raw latency samples, attaches the
// coordinator's per-shard stats, and writes the aggregate report.
int RunFleet(const FleetConfig& config) {
  const std::string exe = SelfExecutable();
  if (exe.empty()) {
    std::fprintf(stderr, "loadgen: cannot resolve /proc/self/exe\n");
    return 1;
  }
  const char* tmpdir_env = std::getenv("TMPDIR");
  const std::string tmpdir =
      (tmpdir_env != nullptr && tmpdir_env[0] != '\0') ? tmpdir_env : "/tmp";
  const std::string base = geacc::StrFormat(
      "%s/loadgen_fleet_%d", tmpdir.c_str(), static_cast<int>(getpid()));

  std::fprintf(stderr,
               "loadgen: fleet of %d process(es) x %d thread(s) against "
               "%s:%d\n",
               config.fleet, config.threads, config.host.c_str(), config.port);

  std::vector<pid_t> children;
  std::vector<std::string> child_jsons;
  std::vector<std::string> child_samples;
  geacc::WallTimer wall;
  for (int i = 0; i < config.fleet; ++i) {
    child_jsons.push_back(geacc::StrFormat("%s_%d.json", base.c_str(), i));
    child_samples.push_back(
        geacc::StrFormat("%s_%d.samples", base.c_str(), i));
    std::vector<std::string> args;
    args.push_back(exe);
    args.push_back("--host=" + config.host);
    args.push_back(geacc::StrFormat("--port=%d", config.port));
    args.push_back(geacc::StrFormat("--threads=%d", config.threads));
    args.push_back(geacc::StrFormat("--duration_s=%.6f", config.duration_s));
    args.push_back("--mode=" + config.mode);
    args.push_back(geacc::StrFormat("--rate=%.6f",
                                    config.rate / config.fleet));
    args.push_back(geacc::StrFormat("--topk=%d", config.topk));
    args.push_back(geacc::StrFormat("--mutate_fraction=%.6f",
                                    config.mutate_fraction));
    args.push_back(geacc::StrFormat("--dim=%d", config.dim));
    args.push_back(geacc::StrFormat(
        "--seed=%lld",
        static_cast<long long>(config.seed + 1 +
                               static_cast<int64_t>(i) * 1000003)));
    args.push_back("--label=" + config.label);
    args.push_back("--json=" + child_jsons.back());
    args.push_back("--samples_out=" + child_samples.back());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0) {
      std::fprintf(stderr, "loadgen: fork: %s\n", std::strerror(errno));
      return 1;
    }
    if (pid == 0) {
      execv(exe.c_str(), argv.data());
      std::fprintf(stderr, "loadgen: execv %s: %s\n", exe.c_str(),
                   std::strerror(errno));
      _exit(127);
    }
    children.push_back(pid);
  }

  int failures = 0;
  for (int i = 0; i < config.fleet; ++i) {
    int status = 0;
    if (waitpid(children[i], &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "loadgen: fleet child %d failed (status %d)\n", i,
                   status);
      ++failures;
    }
  }
  const double elapsed = wall.Seconds();

  // Merge: counters summed across children, latency samples unioned for
  // exact fleet-wide percentiles.
  std::map<std::string, int64_t> counters;
  LatencyRecorder all_latency;
  for (int i = 0; i < config.fleet; ++i) {
    std::ifstream in(child_jsons[i]);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    geacc::obs::JsonValue json;
    geacc::obs::BenchReport child;
    std::string error;
    if (!in || !geacc::obs::JsonValue::Parse(buffer.str(), &json, &error) ||
        !child.FromJson(json, &error) || child.points.empty()) {
      std::fprintf(stderr, "loadgen: fleet child %d report %s: %s\n", i,
                   child_jsons[i].c_str(),
                   error.empty() ? "unreadable" : error.c_str());
      ++failures;
      continue;
    }
    for (const auto& [name, value] : child.points[0].counters) {
      // Rates don't sum across processes; recompute QPS below instead.
      if (name == "loadgen.qps") continue;
      counters[name] += value;
    }
    std::ifstream samples(child_samples[i]);
    double sample = 0.0;
    while (samples >> sample) all_latency.Record(sample);
  }
  for (int i = 0; i < config.fleet; ++i) {
    std::remove(child_jsons[i].c_str());
    std::remove(child_samples[i].c_str());
  }

  const int64_t requests = counters["loadgen.requests"];
  const double qps = elapsed > 0.0 ? requests / elapsed : 0.0;
  const double p50_ms = all_latency.Percentile(50.0) * 1e3;
  const double p95_ms = all_latency.Percentile(95.0) * 1e3;
  const double p99_ms = all_latency.Percentile(99.0) * 1e3;
  counters["loadgen.qps"] = static_cast<int64_t>(qps);
  counters["loadgen.fleet"] = config.fleet;

  std::printf("loadgen: fleet %lld requests in %.2fs = %.0f QPS\n",
              static_cast<long long>(requests), elapsed, qps);
  std::printf("loadgen: fleet latency p50 %.3fms  p95 %.3fms  p99 %.3fms "
              "(%lld samples)\n",
              p50_ms, p95_ms, p99_ms,
              static_cast<long long>(all_latency.count()));
  std::printf("loadgen: fleet overloads %lld, server_errors %lld, "
              "protocol_errors %lld\n",
              static_cast<long long>(counters["loadgen.overloads"]),
              static_cast<long long>(counters["loadgen.server_errors"]),
              static_cast<long long>(counters["loadgen.protocol_errors"]));

  // The coordinator's own view: global MaxSum plus per-shard RPC traffic.
  SocketClient probe;
  std::string error;
  geacc::svc::ShardTopologyStats topology;
  bool have_topology = false;
  if (!probe.Connect(config.host, config.port, &error)) {
    std::fprintf(stderr, "loadgen: fleet stats probe: %s\n", error.c_str());
    ++failures;
  } else if (probe.GetShardStats(&topology) != RpcStatus::kOk) {
    std::fprintf(stderr,
                 "loadgen: %s:%d does not serve shard stats (not a "
                 "coordinator?) — omitting the shards section\n",
                 config.host.c_str(), config.port);
  } else {
    have_topology = true;
    for (const geacc::svc::ShardStatsEntry& entry : topology.shards) {
      std::printf("loadgen: shard %d: %lld rpcs, p50 %.3fms p95 %.3fms "
                  "p99 %.3fms, %lld pairs\n",
                  entry.shard, static_cast<long long>(entry.rpc_requests),
                  entry.rpc_p50_ms, entry.rpc_p95_ms, entry.rpc_p99_ms,
                  static_cast<long long>(entry.stats.pairs));
    }
  }

  if (!config.json.empty()) {
    geacc::obs::BenchReport report;
    report.bench = "loadgen";
    report.git_rev = geacc::obs::GitRevision();
    report.flags["fleet"] = geacc::StrFormat("%d", config.fleet);
    report.flags["threads"] = geacc::StrFormat("%d", config.threads);
    report.flags["mode"] = config.mode;
    report.flags["duration_s"] =
        geacc::StrFormat("%g", config.duration_s);
    geacc::obs::BenchPoint point;
    point.label = config.label;
    point.solver = "service";
    point.wall_seconds = elapsed;
    point.counters = counters;
    point.has_latency = true;
    point.latency = {p50_ms, p95_ms, p99_ms, all_latency.count()};
    if (have_topology) {
      point.max_sum = topology.global_max_sum;
      point.has_shards = true;
      point.shards.shard_count = topology.shard_count;
      point.shards.fleet = config.fleet;
      point.shards.qps = qps;
      for (const geacc::svc::ShardStatsEntry& entry : topology.shards) {
        geacc::obs::ShardLatency shard;
        shard.shard = entry.shard;
        shard.requests = entry.rpc_requests;
        shard.p50_ms = entry.rpc_p50_ms;
        shard.p95_ms = entry.rpc_p95_ms;
        shard.p99_ms = entry.rpc_p99_ms;
        point.shards.per_shard.push_back(shard);
      }
    }
    report.points.push_back(std::move(point));
    std::string write_error;
    if (!report.WriteFile(config.json, &write_error)) {
      std::fprintf(stderr, "loadgen: %s\n", write_error.c_str());
      return 1;
    }
    std::printf("wrote geacc-bench v1 report: %s\n", config.json.c_str());
  }

  return failures == 0 && counters["loadgen.protocol_errors"] == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7411;
  int threads = 4;
  double duration_s = 5.0;
  std::string mode = "closed";
  double rate = 50000.0;
  int topk = 8;
  double mutate_fraction = 0.05;
  int dim = 20;
  std::string json;
  std::string label = "mixed";
  int64_t seed = 42;
  int fleet = 0;
  std::string samples_out;

  geacc::FlagSet flags;
  flags.AddString("host", &host, "server host");
  flags.AddInt("port", &port, "server port");
  flags.AddInt("threads", &threads, "client threads (one connection each)");
  flags.AddDouble("duration_s", &duration_s, "run length in seconds");
  flags.AddString("mode", &mode,
                  "closed (back-to-back) | open (paced by --rate)");
  flags.AddDouble("rate", &rate, "open-loop target QPS across all threads");
  flags.AddInt("topk", &topk, "k for top_k requests");
  flags.AddDouble("mutate_fraction", &mutate_fraction,
                  "fraction of requests that are mutations");
  flags.AddInt("dim", &dim,
               "attribute dimension for add_user mutations (must match the "
               "server; it rejects mismatched arity)");
  flags.AddString("json", &json,
                  "write a geacc-bench v1 JSON report to this path");
  flags.AddString("label", &label, "report point label");
  flags.AddInt("seed", &seed, "base RNG seed");
  flags.AddInt("fleet", &fleet,
               "spawn this many loadgen processes against a geacc_coord "
               "front-end and aggregate (0 = single process)");
  flags.AddString("samples_out", &samples_out,
                  "write raw latency samples (seconds, one per line) here — "
                  "fleet children use this to hand samples to the parent");
  flags.Parse(argc, argv);

  if (mode != "closed" && mode != "open") {
    std::fprintf(stderr, "loadgen: --mode must be 'closed' or 'open'\n");
    return 2;
  }
  if (threads < 1 || duration_s <= 0.0 || mutate_fraction < 0.0 ||
      mutate_fraction > 1.0 || fleet < 0) {
    std::fprintf(stderr, "loadgen: bad --threads/--duration_s/"
                         "--mutate_fraction/--fleet\n");
    return 2;
  }

  if (fleet > 0) {
    FleetConfig config;
    config.host = host;
    config.port = port;
    config.threads = threads;
    config.duration_s = duration_s;
    config.mode = mode;
    config.rate = rate;
    config.topk = topk;
    config.mutate_fraction = mutate_fraction;
    config.dim = dim;
    config.label = label;
    config.seed = seed;
    config.fleet = fleet;
    config.json = json;
    return RunFleet(config);
  }

  // One bootstrap connection: learn the id ranges and prove the server is
  // up before spawning workers.
  SocketClient probe;
  std::string error;
  if (!probe.Connect(host, port, &error)) {
    std::fprintf(stderr, "loadgen: %s\n", error.c_str());
    return 1;
  }
  ServiceStatsView shape;
  if (probe.GetStats(&shape) != RpcStatus::kOk) {
    std::fprintf(stderr, "loadgen: stats probe failed: %s\n",
                 probe.last_error().c_str());
    return 1;
  }
  OpMix mix;
  const double read_scale =
      (1.0 - mutate_fraction) /
      (mix.assignments + mix.attendees + mix.topk + mix.stats);
  mix.assignments *= read_scale;
  mix.attendees *= read_scale;
  mix.topk *= read_scale;
  mix.stats *= read_scale;

  const bool open_loop = mode == "open";
  const double thread_rate = open_loop ? rate / threads : 0.0;

  std::fprintf(stderr,
               "loadgen: %d thread(s), %.1fs, %s loop against %s:%d "
               "(|V| slots %d, |U| slots %d)\n",
               threads, duration_s, mode.c_str(), host.c_str(), port,
               shape.event_slots, shape.user_slots);

  std::vector<WorkerResult> results(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  geacc::WallTimer wall;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back(RunWorker, host, port, duration_s, open_loop,
                         thread_rate, mix, topk, shape, dim,
                         static_cast<uint64_t>(seed) + t, &results[t]);
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed = wall.Seconds();

  WorkerResult total;
  LatencyRecorder all_latency;
  for (const WorkerResult& r : results) {
    total.requests += r.requests;
    total.assignments += r.assignments;
    total.attendees += r.attendees;
    total.topk += r.topk;
    total.stats += r.stats;
    total.mutates += r.mutates;
    total.overloads += r.overloads;
    total.server_errors += r.server_errors;
    total.protocol_errors += r.protocol_errors;
    // Exact percentiles need the union of every thread's samples.
    for (const double sample : r.latency.samples()) {
      all_latency.Record(sample);
    }
  }
  const double p50_ms = all_latency.Percentile(50.0) * 1e3;
  const double p95_ms = all_latency.Percentile(95.0) * 1e3;
  const double p99_ms = all_latency.Percentile(99.0) * 1e3;

  if (!samples_out.empty()) {
    std::ofstream out(samples_out);
    for (const double sample : all_latency.samples()) {
      out << geacc::StrFormat("%.9e", sample) << "\n";
    }
    if (!out) {
      std::fprintf(stderr, "loadgen: cannot write %s\n", samples_out.c_str());
      return 1;
    }
  }

  ServiceStatsView final_stats;
  probe.GetStats(&final_stats);

  const double qps = elapsed > 0.0 ? total.requests / elapsed : 0.0;
  std::printf("loadgen: %lld requests in %.2fs = %.0f QPS\n",
              static_cast<long long>(total.requests), elapsed, qps);
  std::printf("loadgen: latency p50 %.3fms  p95 %.3fms  p99 %.3fms "
              "(%lld samples)\n",
              p50_ms, p95_ms, p99_ms,
              static_cast<long long>(all_latency.count()));
  std::printf("loadgen: overloads %lld, server_errors %lld, "
              "protocol_errors %lld\n",
              static_cast<long long>(total.overloads),
              static_cast<long long>(total.server_errors),
              static_cast<long long>(total.protocol_errors));

  if (!json.empty()) {
    geacc::obs::BenchReport report;
    report.bench = "loadgen";
    report.git_rev = geacc::obs::GitRevision();
    for (const auto& [name, value] : flags.Values()) {
      report.flags[name] = value;
    }
    geacc::obs::BenchPoint point;
    point.label = label;
    point.solver = "service";
    point.wall_seconds = elapsed;
    point.max_sum = final_stats.max_sum;
    point.counters["loadgen.requests"] = total.requests;
    point.counters["loadgen.qps"] = static_cast<int64_t>(qps);
    point.counters["loadgen.get_assignments"] = total.assignments;
    point.counters["loadgen.get_attendees"] = total.attendees;
    point.counters["loadgen.top_k"] = total.topk;
    point.counters["loadgen.stats"] = total.stats;
    point.counters["loadgen.mutates"] = total.mutates;
    point.counters["loadgen.overloads"] = total.overloads;
    point.counters["loadgen.server_errors"] = total.server_errors;
    point.counters["loadgen.protocol_errors"] = total.protocol_errors;
    point.counters["svc.applied_seq"] = final_stats.applied_seq;
    point.has_latency = true;
    point.latency = {p50_ms, p95_ms, p99_ms, all_latency.count()};
    report.points.push_back(std::move(point));
    std::string write_error;
    if (!report.WriteFile(json, &write_error)) {
      std::fprintf(stderr, "loadgen: %s\n", write_error.c_str());
      return 1;
    }
    std::printf("wrote geacc-bench v1 report: %s\n", json.c_str());
  }

  return total.protocol_errors == 0 ? 0 : 1;
}
