file(REMOVE_RECURSE
  "CMakeFiles/approximation_property_test.dir/approximation_property_test.cc.o"
  "CMakeFiles/approximation_property_test.dir/approximation_property_test.cc.o.d"
  "approximation_property_test"
  "approximation_property_test.pdb"
  "approximation_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximation_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
