// Tests for the mutation-trace text serialization.

#include <gtest/gtest.h>

#include <sstream>

#include "dyn/dynamic_instance.h"
#include "gen/trace_gen.h"
#include "io/trace_io.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

MutationTrace SmallTrace(uint64_t seed = 3) {
  TraceGenConfig config;
  config.initial_events = 6;
  config.initial_users = 25;
  config.dim = 3;
  config.num_mutations = 60;
  config.seed = seed;
  return GenerateTrace(config);
}

void ExpectMutationsEqual(const MutationTrace& a, const MutationTrace& b) {
  ASSERT_EQ(a.mutations.size(), b.mutations.size());
  for (size_t i = 0; i < a.mutations.size(); ++i) {
    const Mutation& x = a.mutations[i];
    const Mutation& y = b.mutations[i];
    ASSERT_EQ(x.kind, y.kind) << "mutation " << i;
    EXPECT_EQ(x.id, y.id) << "mutation " << i;
    EXPECT_EQ(x.other, y.other) << "mutation " << i;
    EXPECT_EQ(x.capacity, y.capacity) << "mutation " << i;
    EXPECT_EQ(x.mask, y.mask) << "mutation " << i;
    ASSERT_EQ(x.attributes.size(), y.attributes.size()) << "mutation " << i;
    for (size_t j = 0; j < x.attributes.size(); ++j) {
      EXPECT_EQ(x.attributes[j], y.attributes[j])
          << "mutation " << i << " attr " << j << " not bit-exact";
    }
  }
}

TEST(TraceIo, RoundTripGeneratedTrace) {
  const MutationTrace original = SmallTrace();
  std::stringstream stream;
  WriteTrace(original, stream);
  std::string error;
  const auto loaded = ReadTrace(stream, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->initial.num_events(), original.initial.num_events());
  EXPECT_EQ(loaded->initial.num_users(), original.initial.num_users());
  ExpectMutationsEqual(original, *loaded);
}

TEST(TraceIo, RoundTripReplaysToTheSameFinalState) {
  const MutationTrace original = SmallTrace(9);
  std::stringstream stream;
  WriteTrace(original, stream);
  const auto loaded = ReadTrace(stream);
  ASSERT_TRUE(loaded.has_value());

  DynamicInstance a(original.initial);
  for (const Mutation& m : original.mutations) a.Apply(m);
  DynamicInstance b(loaded->initial);
  for (const Mutation& m : loaded->mutations) b.Apply(m);
  EXPECT_EQ(a.DebugString(), b.DebugString());
  for (EventId v = 0; v < a.event_slots(); ++v) {
    for (UserId u = 0; u < a.user_slots(); u += 3) {
      ASSERT_EQ(a.Similarity(v, u), b.Similarity(v, u));
    }
  }
}

TEST(TraceIo, RoundTripThroughFilesystem) {
  const MutationTrace original = SmallTrace(4);
  const std::string path = ::testing::TempDir() + "/geacc_trace.txt";
  ASSERT_TRUE(WriteTraceToFile(original, path));
  std::string error;
  const auto loaded = ReadTraceFromFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ExpectMutationsEqual(original, *loaded);
}

TEST(TraceIo, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(
      ReadTraceFromFile("/nonexistent/geacc_trace.txt", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(TraceIo, EmptyMutationListIsValid) {
  MutationTrace trace{geacc::testing::PaperTableIExample(), {}};
  std::stringstream stream;
  WriteTrace(trace, stream);
  const auto loaded = ReadTrace(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->mutations.empty());
}

std::string ValidPrefix() {
  MutationTrace trace{geacc::testing::PaperTableIExample(), {}};
  std::stringstream stream;
  WriteTrace(trace, stream);
  const std::string text = stream.str();
  // Strip the trailing "mutations 0\n" so tests can append their own list.
  return text.substr(0, text.rfind("mutations"));
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream stream("geacc-trace v9\n");
  std::string error;
  EXPECT_FALSE(ReadTrace(stream, &error).has_value());
  EXPECT_NE(error.find("geacc-trace v1"), std::string::npos);
}

TEST(TraceIo, RejectsBrokenEmbeddedInstance) {
  std::stringstream stream("geacc-trace v1\ngeacc-instance v9\n");
  std::string error;
  EXPECT_FALSE(ReadTrace(stream, &error).has_value());
  EXPECT_NE(error.find("embedded instance"), std::string::npos);
}

TEST(TraceIo, RejectsUnknownMutationKeyword) {
  std::stringstream stream(ValidPrefix() + "mutations 1\nwarp_user 0\n");
  std::string error;
  EXPECT_FALSE(ReadTrace(stream, &error).has_value());
  EXPECT_NE(error.find("warp_user"), std::string::npos);
}

TEST(TraceIo, RejectsWrongArity) {
  std::stringstream stream(ValidPrefix() + "mutations 1\nadd_conflict 0\n");
  std::string error;
  EXPECT_FALSE(ReadTrace(stream, &error).has_value());
  EXPECT_NE(error.find("add_conflict"), std::string::npos);
}

TEST(TraceIo, RejectsSelfConflict) {
  std::stringstream stream(ValidPrefix() + "mutations 1\nadd_conflict 1 1\n");
  EXPECT_FALSE(ReadTrace(stream).has_value());
}

TEST(TraceIo, RejectsNonPositiveCapacity) {
  std::stringstream stream(
      ValidPrefix() + "mutations 1\nset_user_capacity 0 0\n");
  EXPECT_FALSE(ReadTrace(stream).has_value());
}

TEST(TraceIo, RejectsWrongAttributeArity) {
  // PaperTableIExample has dim 5; add_user carries 2 attributes.
  std::stringstream stream(
      ValidPrefix() + "mutations 1\nadd_user 2 1.0 2.0\n");
  std::string error;
  EXPECT_FALSE(ReadTrace(stream, &error).has_value());
  EXPECT_NE(error.find("add_user"), std::string::npos);
}

TEST(TraceIo, RoundTripSlotMutations) {
  MutationTrace trace{geacc::testing::PaperTableIExample(), {}};
  trace.mutations.push_back(Mutation::SetEventSlot(1, 2));
  trace.mutations.push_back(Mutation::SetEventSlot(0, kMaxTimeSlots - 1));
  trace.mutations.push_back(Mutation::SetUserAvailability(3, 0b101));
  trace.mutations.push_back(Mutation::SetUserAvailability(0, 0));
  trace.mutations.push_back(
      Mutation::SetUserAvailability(2, kFullSlotAvailability));
  std::stringstream stream;
  WriteTrace(trace, stream);
  std::string error;
  const auto loaded = ReadTrace(stream, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ExpectMutationsEqual(trace, *loaded);
}

TEST(TraceIo, RejectsUnknownSlotId) {
  // Slot ids are structurally bounded by kMaxTimeSlots at parse time.
  std::stringstream stream(ValidPrefix() + "mutations 1\nset_event_slot 0 " +
                           std::to_string(kMaxTimeSlots) + "\n");
  std::string error;
  EXPECT_FALSE(ReadTrace(stream, &error).has_value());
  EXPECT_NE(error.find("set_event_slot"), std::string::npos);
}

TEST(TraceIo, RejectsNegativeSlotId) {
  std::stringstream stream(ValidPrefix() + "mutations 1\nset_event_slot 0 -1\n");
  EXPECT_FALSE(ReadTrace(stream).has_value());
}

TEST(TraceIo, RejectsNegativeAvailabilityMask) {
  std::stringstream stream(
      ValidPrefix() + "mutations 1\nset_user_availability 0 -1\n");
  std::string error;
  EXPECT_FALSE(ReadTrace(stream, &error).has_value());
  EXPECT_NE(error.find("set_user_availability"), std::string::npos);
}

TEST(TraceIo, RejectsOverwideAvailabilityMask) {
  // 2^kMaxTimeSlots is one past the widest representable mask.
  std::stringstream stream(
      ValidPrefix() + "mutations 1\nset_user_availability 0 " +
      std::to_string(int64_t{1} << kMaxTimeSlots) + "\n");
  EXPECT_FALSE(ReadTrace(stream).has_value());
}

TEST(TraceIo, RejectsSlotMutationArity) {
  std::stringstream stream(ValidPrefix() + "mutations 1\nset_event_slot 0\n");
  EXPECT_FALSE(ReadTrace(stream).has_value());
}

TEST(TraceIo, RejectsTruncatedMutationList) {
  std::stringstream stream(ValidPrefix() + "mutations 2\nremove_user 0\n");
  std::string error;
  EXPECT_FALSE(ReadTrace(stream, &error).has_value());
  EXPECT_NE(error.find("end of mutation list"), std::string::npos);
}

}  // namespace
}  // namespace geacc
