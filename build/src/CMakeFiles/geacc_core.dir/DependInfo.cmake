
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arrangement.cc" "src/CMakeFiles/geacc_core.dir/core/arrangement.cc.o" "gcc" "src/CMakeFiles/geacc_core.dir/core/arrangement.cc.o.d"
  "/root/repo/src/core/attributes.cc" "src/CMakeFiles/geacc_core.dir/core/attributes.cc.o" "gcc" "src/CMakeFiles/geacc_core.dir/core/attributes.cc.o.d"
  "/root/repo/src/core/conflict_graph.cc" "src/CMakeFiles/geacc_core.dir/core/conflict_graph.cc.o" "gcc" "src/CMakeFiles/geacc_core.dir/core/conflict_graph.cc.o.d"
  "/root/repo/src/core/instance.cc" "src/CMakeFiles/geacc_core.dir/core/instance.cc.o" "gcc" "src/CMakeFiles/geacc_core.dir/core/instance.cc.o.d"
  "/root/repo/src/core/preprocess.cc" "src/CMakeFiles/geacc_core.dir/core/preprocess.cc.o" "gcc" "src/CMakeFiles/geacc_core.dir/core/preprocess.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/CMakeFiles/geacc_core.dir/core/similarity.cc.o" "gcc" "src/CMakeFiles/geacc_core.dir/core/similarity.cc.o.d"
  "/root/repo/src/core/solver.cc" "src/CMakeFiles/geacc_core.dir/core/solver.cc.o" "gcc" "src/CMakeFiles/geacc_core.dir/core/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geacc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
