// Differential tests for the batched SIMD similarity kernels
// (src/simd, DESIGN.md §15): every available dispatch level against the
// per-pair scalar path, bit-for-bit in strict mode, across awkward
// shapes (dims and row counts that are not multiples of the vector width
// or block size), zero vectors, and denormals.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/attributes.h"
#include "core/similarity.h"
#include "simd/kernels.h"
#include "simd/simd.h"
#include "util/rng.h"

namespace geacc {
namespace {

// Shapes chosen to straddle the AVX2 lane width (4), the block size (8),
// and the padded tail: dims/rows below, at, and above each boundary.
const int kDims[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 20, 31, 32, 100};
const int kRowCounts[] = {1, 2, 7, 8, 9, 16, 17, 63, 100};

uint64_t Bits(double x) {
  uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

// Bitwise equality — stricter than EXPECT_DOUBLE_EQ (distinguishes ±0,
// catches last-ulp drift the strict contract forbids).
void ExpectBitEqual(double got, double want, const std::string& context) {
  EXPECT_EQ(Bits(got), Bits(want))
      << context << ": got " << got << " want " << want;
}

// The dispatch levels this machine can actually run.
std::vector<simd::Level> AvailableLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::CpuSupportsAvx2()) levels.push_back(simd::Level::kAvx2);
  return levels;
}

// 64-byte-aligned buffer of `doubles` doubles.
class AlignedBuffer {
 public:
  explicit AlignedBuffer(int64_t doubles)
      : storage_(static_cast<size_t>(doubles) + simd::kBlockAlignment /
                                                    sizeof(double)) {
    void* p = storage_.data();
    std::size_t space = storage_.size() * sizeof(double);
    p = std::align(simd::kBlockAlignment,
                   static_cast<size_t>(doubles) * sizeof(double), p, space);
    ptr_ = static_cast<double*>(p);
  }
  double* get() { return ptr_; }

 private:
  std::vector<double> storage_;
  double* ptr_;
};

AttributeMatrix RandomMatrix(int rows, int dim, Rng& rng) {
  AttributeMatrix m(rows, dim);
  for (int i = 0; i < rows; ++i) {
    double* row = m.MutableRow(i);
    for (int j = 0; j < dim; ++j) row[j] = rng.UniformReal(0.0, 100.0);
  }
  return m;
}

// --------------------------------------------------------- BuildBlocked ---

TEST(BuildBlocked, LayoutFormulaAndZeroPadding) {
  const int rows = 11, dim = 3;  // two blocks, five padded lanes
  Rng rng(7);
  AttributeMatrix m = RandomMatrix(rows, dim, rng);
  AlignedBuffer buf(simd::BlockedSize(rows, dim));
  simd::BuildBlocked(m.Row(0), rows, dim, buf.get());
  const double* blocked = buf.get();
  for (int64_t block = 0; block < simd::NumBlocks(rows); ++block) {
    for (int j = 0; j < dim; ++j) {
      for (int r = 0; r < simd::kBlockRows; ++r) {
        const int64_t i = block * simd::kBlockRows + r;
        const double got =
            blocked[(block * dim + j) * simd::kBlockRows + r];
        const double want = i < rows ? m.At(i, j) : 0.0;
        ExpectBitEqual(got, want,
                       "block " + std::to_string(block) + " dim " +
                           std::to_string(j) + " lane " + std::to_string(r));
      }
    }
  }
}

TEST(BlockedAttributes, AlignedAndInvalidatedOnMutation) {
  Rng rng(3);
  AttributeMatrix m = RandomMatrix(9, 4, rng);
  const BlockedAttributes& blocked = m.Blocked();
  EXPECT_EQ(reinterpret_cast<uintptr_t>(blocked.data()) %
                simd::kBlockAlignment,
            0u);
  EXPECT_EQ(blocked.rows(), 9);
  EXPECT_EQ(blocked.dim(), 4);
  EXPECT_EQ(blocked.num_blocks(), 2);
  ExpectBitEqual(blocked.data()[0 * simd::kBlockRows + 2], m.At(2, 0),
                 "pre-mutation lane");

  m.Set(2, 0, -5.0);  // must invalidate the mirror
  const BlockedAttributes& rebuilt = m.Blocked();
  ExpectBitEqual(rebuilt.data()[0 * simd::kBlockRows + 2], -5.0,
                 "post-mutation lane");
}

TEST(BlockedAttributes, CopyAndMoveStartCold) {
  Rng rng(4);
  AttributeMatrix m = RandomMatrix(10, 2, rng);
  (void)m.Blocked();  // warm the source mirror

  AttributeMatrix copy = m;  // payload copied, mirror rebuilt on demand
  const BlockedAttributes& b = copy.Blocked();
  for (int i = 0; i < 10; ++i) {
    const int64_t block = i / simd::kBlockRows, lane = i % simd::kBlockRows;
    ExpectBitEqual(
        b.data()[(block * 2 + 0) * simd::kBlockRows + lane], m.At(i, 0),
        "copied row " + std::to_string(i));
  }

  AttributeMatrix moved = std::move(copy);
  EXPECT_EQ(moved.rows(), 10);
  (void)moved.Blocked();
}

// --------------------------------------------- strict-mode bit identity ---

// Builds a fn × dim × rows × level sweep and pins ComputeBatch(strict)
// bitwise to the per-pair Compute path.
void CheckStrictIdentity(const AttributeMatrix& m,
                         const std::vector<double>& query,
                         const std::string& tag) {
  const struct {
    const char* name;
    double param;
  } kFns[] = {{"euclidean", 100.0}, {"cosine", 0.0}, {"rbf", 25.0},
              {"dot", 0.0}};
  const int dim = m.dim();
  const int64_t rows = m.rows();
  std::vector<double> out(static_cast<size_t>(rows));
  for (const auto& fn : kFns) {
    const auto sim = MakeSimilarity(fn.name, fn.param);
    for (simd::Level level : AvailableLevels()) {
      std::string error;
      ASSERT_TRUE(simd::SetDispatchOverride(simd::LevelName(level), &error))
          << error;
      sim->ComputeBatch(query.data(), m.Blocked(), simd::FpMode::kStrict,
                        out.data());
      for (int64_t i = 0; i < rows; ++i) {
        ExpectBitEqual(out[i], sim->Compute(query.data(), m.Row(i), dim),
                       std::string(fn.name) + "/" +
                           simd::LevelName(level) + "/" + tag + "/row " +
                           std::to_string(i));
      }
    }
  }
  std::string error;
  ASSERT_TRUE(simd::SetDispatchOverride("auto", &error)) << error;
}

TEST(BatchKernels, StrictBitIdenticalAcrossShapes) {
  for (int dim : kDims) {
    for (int rows : kRowCounts) {
      Rng rng(1000 + dim * 131 + rows);
      AttributeMatrix m = RandomMatrix(rows, dim, rng);
      std::vector<double> query(static_cast<size_t>(dim));
      for (double& q : query) q = rng.UniformReal(0.0, 100.0);
      CheckStrictIdentity(m, query,
                          "d" + std::to_string(dim) + "xn" +
                              std::to_string(rows));
    }
  }
}

TEST(BatchKernels, StrictBitIdenticalZeroVectors) {
  // Zero rows (cosine's 0-norm guard) and a zero query, mixed with
  // ordinary rows so the same batch exercises both branches.
  const int dim = 20, rows = 13;
  Rng rng(99);
  AttributeMatrix m = RandomMatrix(rows, dim, rng);
  for (int j = 0; j < dim; ++j) {
    m.Set(0, j, 0.0);
    m.Set(8, j, 0.0);  // zero row in the tail block
  }
  std::vector<double> query(dim, 0.0);
  CheckStrictIdentity(m, query, "zero-query");
  for (double& q : query) q = rng.UniformReal(0.0, 100.0);
  CheckStrictIdentity(m, query, "zero-rows");
}

TEST(BatchKernels, StrictBitIdenticalDenormals) {
  // Denormal attributes: strict identity must survive gradual underflow.
  const int dim = 9, rows = 17;
  const double tiny = 4.9406564584124654e-324;  // smallest denormal
  AttributeMatrix m(rows, dim);
  Rng rng(5);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < dim; ++j) {
      m.Set(i, j, tiny * static_cast<double>(rng.UniformInt(0, 1 << 20)));
    }
  }
  std::vector<double> query(dim);
  for (double& q : query) {
    q = tiny * static_cast<double>(rng.UniformInt(0, 1 << 20));
  }
  CheckStrictIdentity(m, query, "denormals");
}

// --------------------------------------------------------- fast mode ------

TEST(BatchKernels, FastModeNearStrictAndScalarFastIsStrict) {
  const int dim = 33, rows = 29;
  Rng rng(42);
  AttributeMatrix m = RandomMatrix(rows, dim, rng);
  std::vector<double> query(dim);
  for (double& q : query) q = rng.UniformReal(0.0, 100.0);

  const auto sim = MakeSimilarity("euclidean", 100.0);
  std::vector<double> strict(rows), fast(rows);
  for (simd::Level level : AvailableLevels()) {
    std::string error;
    ASSERT_TRUE(simd::SetDispatchOverride(simd::LevelName(level), &error))
        << error;
    sim->ComputeBatch(query.data(), m.Blocked(), simd::FpMode::kStrict,
                      strict.data());
    sim->ComputeBatch(query.data(), m.Blocked(), simd::FpMode::kFast,
                      fast.data());
    for (int i = 0; i < rows; ++i) {
      if (level == simd::Level::kScalar) {
        // kFast *permits* contraction; the scalar level never contracts,
        // so fast must alias strict exactly.
        ExpectBitEqual(fast[i], strict[i], "scalar fast row " +
                                               std::to_string(i));
      } else {
        // One rounding saved per accumulate: relative drift stays tiny.
        EXPECT_NEAR(fast[i], strict[i],
                    1e-12 * std::max(1.0, std::abs(strict[i])))
            << "avx2 fast row " << i;
      }
    }
  }
  std::string error;
  ASSERT_TRUE(simd::SetDispatchOverride("auto", &error)) << error;
}

// ------------------------------------------------------ raw batch drivers --

TEST(BatchKernels, SquaredDistanceMatchesReferenceLoop) {
  for (int dim : {1, 5, 8, 17}) {
    for (int rows : {3, 8, 21}) {
      Rng rng(dim * 31 + rows);
      AttributeMatrix m = RandomMatrix(rows, dim, rng);
      std::vector<double> query(dim);
      for (double& q : query) q = rng.UniformReal(0.0, 100.0);
      AlignedBuffer blocked(simd::BlockedSize(rows, dim));
      simd::BuildBlocked(m.Row(0), rows, dim, blocked.get());
      std::vector<double> out(rows);
      for (simd::Level level : AvailableLevels()) {
        simd::BatchSquaredDistance(level, simd::FpMode::kStrict,
                                   query.data(), blocked.get(), dim, rows,
                                   out.data());
        for (int i = 0; i < rows; ++i) {
          // Reference: ascending-j accumulation with separate mul/add —
          // the exact association the strict contract promises.
          double acc = 0.0;
          for (int j = 0; j < dim; ++j) {
            const double diff = query[j] - m.At(i, j);
            acc += diff * diff;
          }
          ExpectBitEqual(out[i], acc,
                         std::string("sqdist/") + simd::LevelName(level) +
                             "/d" + std::to_string(dim) + "/row " +
                             std::to_string(i));
        }
      }
    }
  }
}

TEST(BatchKernels, VaLowerBoundMatchesReferenceLoop) {
  const int cells = 16;
  for (int dim : {1, 2, 4, 7, 8, 13}) {
    for (int rows : {1, 6, 8, 19}) {
      Rng rng(dim * 17 + rows);
      // Random signatures (padded lanes stay cell 0, a valid id) and a
      // random contribution table.
      std::vector<uint8_t> sig(
          static_cast<size_t>(simd::BlockedSize(rows, dim)), 0);
      std::vector<std::vector<uint8_t>> row_sigs(rows,
                                                 std::vector<uint8_t>(dim));
      for (int i = 0; i < rows; ++i) {
        const int64_t block = i / simd::kBlockRows;
        const int64_t lane = i % simd::kBlockRows;
        for (int j = 0; j < dim; ++j) {
          row_sigs[i][j] =
              static_cast<uint8_t>(rng.UniformInt(0, cells - 1));
          sig[(block * dim + j) * simd::kBlockRows + lane] = row_sigs[i][j];
        }
      }
      std::vector<double> table(static_cast<size_t>(dim) * cells);
      for (double& t : table) t = rng.UniformReal(0.0, 50.0);
      std::vector<double> out(rows);
      for (simd::Level level : AvailableLevels()) {
        simd::BatchVaLowerBound(level, table.data(), cells, sig.data(), dim,
                                rows, out.data());
        for (int i = 0; i < rows; ++i) {
          double acc = 0.0;
          for (int j = 0; j < dim; ++j) {
            acc += table[static_cast<size_t>(j) * cells + row_sigs[i][j]];
          }
          ExpectBitEqual(out[i], acc,
                         std::string("va/") + simd::LevelName(level) +
                             "/d" + std::to_string(dim) + "/row " +
                             std::to_string(i));
        }
      }
    }
  }
}

// ------------------------------------------------------------- dispatch ---

TEST(Dispatch, OverrideRoundTripsAndRejectsUnknown) {
  std::string error;
  ASSERT_TRUE(simd::SetDispatchOverride("scalar", &error)) << error;
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  EXPECT_FALSE(simd::SetDispatchOverride("sse9000", &error));
  EXPECT_FALSE(error.empty());
  // A bad request must not clobber the previous override.
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  if (simd::CpuSupportsAvx2()) {
    ASSERT_TRUE(simd::SetDispatchOverride("avx2", &error)) << error;
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kAvx2);
  } else {
    EXPECT_FALSE(simd::SetDispatchOverride("avx2", &error));
  }
  ASSERT_TRUE(simd::SetDispatchOverride("auto", &error)) << error;
}

}  // namespace
}  // namespace geacc
