#include "slot/slotted_gen.h"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "gen/schedule.h"
#include "gen/synthetic.h"
#include "util/check.h"
#include "util/rng.h"

namespace geacc {
namespace slot {

SlottedInstance GenerateSlotted(const SlottedGenConfig& config) {
  GEACC_CHECK_GE(config.num_slots, 1);
  GEACC_CHECK_LE(config.num_slots, kMaxTimeSlots);

  SyntheticConfig base_config;
  base_config.num_events = config.num_events;
  base_config.num_users = config.num_users;
  base_config.dim = config.dim;
  base_config.max_attribute = config.max_attribute;
  base_config.event_attribute =
      DistributionSpec::Uniform(0.0, config.max_attribute);
  base_config.user_attribute =
      DistributionSpec::Uniform(0.0, config.max_attribute);
  base_config.event_capacity = config.event_capacity;
  base_config.user_capacity = config.user_capacity;
  base_config.conflict_density = 0.0;  // conflicts come from the slotting
  base_config.similarity = config.similarity;
  base_config.seed = config.seed;

  SlottedInstance slotted{GenerateSynthetic(base_config), SlotTable{}, {}, {}};

  // Independent streams so the slot structure does not shift when the
  // base shape changes its draw count.
  const Rng root(config.seed);
  Rng window_rng = root.Fork(1);
  Rng allowed_rng = root.Fork(2);
  Rng availability_rng = root.Fork(3);

  slotted.slots.windows = RandomSchedule(
      config.num_slots, config.horizon_hours, config.min_duration_hours,
      config.max_duration_hours, config.city_km, window_rng);
  slotted.slots.speed_kmph = config.travel_speed_kmph;

  const int num_slots = config.num_slots;
  slotted.event_allowed.resize(config.num_events);
  for (EventId v = 0; v < config.num_events; ++v) {
    const SlotId forced =
        static_cast<SlotId>(allowed_rng.UniformInt(0, num_slots - 1));
    uint32_t mask = uint32_t{1} << forced;
    for (SlotId s = 0; s < num_slots; ++s) {
      if (s != forced && allowed_rng.Bernoulli(config.allow_probability)) {
        mask |= uint32_t{1} << s;
      }
    }
    slotted.event_allowed[v] = mask;
  }

  Sampler count_sampler(config.availability_count);
  std::vector<SlotId> slot_ids(num_slots);
  slotted.user_availability.resize(config.num_users);
  for (UserId u = 0; u < config.num_users; ++u) {
    const int count = std::min(num_slots,
                               count_sampler.SampleCapacity(availability_rng));
    // Partial Fisher–Yates: the first `count` entries are a uniform
    // distinct sample of the slot ids.
    std::iota(slot_ids.begin(), slot_ids.end(), 0);
    uint32_t mask = 0;
    for (int i = 0; i < count; ++i) {
      const int j = static_cast<int>(
          availability_rng.UniformInt(i, num_slots - 1));
      std::swap(slot_ids[i], slot_ids[j]);
      mask |= uint32_t{1} << slot_ids[i];
    }
    slotted.user_availability[u] = mask;
  }

  GEACC_CHECK(slotted.Validate().empty());
  return slotted;
}

}  // namespace slot
}  // namespace geacc
