// Bump-pointer scratch arena for hot solver/cursor paths (DESIGN.md §10,
// §15.4).
//
// The batched similarity kernels turned several per-refill `new`/`vector`
// allocations (NN-cursor score buffers, pair-cost rows) into the dominant
// remaining cost on small batches. An Arena replaces them with a pointer
// bump into reused chunks:
//
//  * Alloc<T>(n)    — uninitialized, suitably-aligned storage for n Ts
//                     (trivially destructible Ts only; nothing is ever
//                     destroyed). O(1) amortized; a new chunk is malloc'd
//                     only when the current one is exhausted, with chunk
//                     sizes doubling up to a cap so steady state makes
//                     zero system allocations.
//  * Mark()/Rewind  — watermark stack discipline: Rewind(m) releases
//                     everything allocated since Mark() returned m,
//                     keeping the chunks for reuse. Rewinding to a mark
//                     from an earlier chunk walks back across chunks.
//  * Reset()        — rewind to empty, keeping all chunks.
//  * ScratchScope   — RAII Mark/Rewind.
//
// Ownership & threading: an Arena is single-threaded by design — no
// locks, no atomics. The intended pattern (used by the index cursors and
// solvers) is one arena per worker thread via GetScratchArena(), which
// returns this thread's lazily-created thread_local arena. Cursors and
// solver loops allocate from the calling thread's arena inside a
// ScratchScope, so parallel workers never share scratch and the pool's
// worker model (DESIGN.md §10) needs no changes. Never store a scratch
// pointer beyond the enclosing scope, and never hand one to another
// thread.

#ifndef GEACC_UTIL_ARENA_H_
#define GEACC_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace geacc {

class Arena {
 public:
  // Default chunk geometry: first chunk 64 KiB, doubling to 8 MiB max.
  static constexpr std::size_t kMinChunkBytes = 64 << 10;
  static constexpr std::size_t kMaxChunkBytes = 8 << 20;
  // Every allocation is aligned to this (cache line), so kernel batch
  // buffers from the arena satisfy simd::kBlockAlignment for free.
  static constexpr std::size_t kAlignment = 64;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Opaque watermark; valid until a Rewind to an earlier mark or Reset.
  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  // Uninitialized storage for `count` Ts, kAlignment-aligned. T must be
  // trivially destructible — the arena never runs destructors.
  template <typename T>
  T* Alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destroyed");
    return reinterpret_cast<T*>(AllocBytes(count * sizeof(T)));
  }

  // Raw kAlignment-aligned storage.
  void* AllocBytes(std::size_t bytes);

  Mark Top() const { return Mark{current_, used_}; }

  // Releases everything allocated after `m` (chunks are kept for reuse).
  // `m` must have come from Top() on this arena, with no earlier-mark
  // Rewind/Reset in between.
  void Rewind(Mark m);

  // Rewind to empty; chunks are retained.
  void Reset();

  // Bytes currently handed out (live allocations, including alignment
  // padding) and bytes held in chunks (for ByteEstimate-style reporting).
  std::size_t BytesUsed() const;
  std::size_t BytesReserved() const;

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::byte* base = nullptr;  // kAlignment-aligned pointer into data
    std::size_t size = 0;       // usable bytes from base
  };

  // Slow path: advance to (or allocate) a chunk that fits `bytes`.
  void* AllocSlow(std::size_t bytes);

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // index into chunks_ (== chunks_.size() if none)
  std::size_t used_ = 0;     // bytes consumed in chunks_[current_]
};

// RAII Mark/Rewind: everything allocated from `arena` while the scope is
// alive is released at scope exit.
class ScratchScope {
 public:
  explicit ScratchScope(Arena& arena) : arena_(arena), mark_(arena.Top()) {}
  ~ScratchScope() { arena_.Rewind(mark_); }
  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

// This thread's scratch arena (lazily created, lives until thread exit).
// The per-worker ownership model above makes this safe to use from pool
// workers and the caller lane alike.
Arena& GetScratchArena();

}  // namespace geacc

#endif  // GEACC_UTIL_ARENA_H_
