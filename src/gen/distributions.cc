#include "gen/distributions.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace geacc {

std::string DistributionSpec::DebugString() const {
  switch (kind) {
    case DistributionKind::kUniform:
      return StrFormat("uniform[%g,%g]", p1, p2);
    case DistributionKind::kNormal:
      return StrFormat("normal(mu=%g,sigma=%g)", p1, p2);
    case DistributionKind::kZipf:
      return StrFormat("zipf(s=%g,n=%g)", p1, p2);
  }
  return "?";
}

Sampler::Sampler(const DistributionSpec& spec) : spec_(spec) {
  switch (spec_.kind) {
    case DistributionKind::kUniform:
      GEACC_CHECK_LE(spec_.p1, spec_.p2) << "uniform: lo > hi";
      break;
    case DistributionKind::kNormal:
      GEACC_CHECK_GE(spec_.p2, 0.0) << "normal: negative stddev";
      break;
    case DistributionKind::kZipf: {
      GEACC_CHECK_GT(spec_.p1, 0.0) << "zipf: skew must be positive";
      const auto n = static_cast<int64_t>(spec_.p2);
      GEACC_CHECK_GE(n, 1) << "zipf: range must be >= 1";
      GEACC_CHECK_LE(n, 10'000'000) << "zipf: CDF table would be huge";
      zipf_cdf_.resize(static_cast<size_t>(n));
      double total = 0.0;
      for (int64_t k = 1; k <= n; ++k) {
        total += std::pow(static_cast<double>(k), -spec_.p1);
        zipf_cdf_[static_cast<size_t>(k - 1)] = total;
      }
      for (double& c : zipf_cdf_) c /= total;
      break;
    }
  }
}

double Sampler::Sample(Rng& rng) const {
  switch (spec_.kind) {
    case DistributionKind::kUniform:
      return rng.UniformReal(spec_.p1, spec_.p2);
    case DistributionKind::kNormal:
      return rng.Normal(spec_.p1, spec_.p2);
    case DistributionKind::kZipf: {
      const double draw = rng.NextDouble();
      const auto it =
          std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), draw);
      const auto rank =
          static_cast<int64_t>(it - zipf_cdf_.begin()) + 1;  // 1-based
      return static_cast<double>(std::min<int64_t>(
          rank, static_cast<int64_t>(zipf_cdf_.size())));
    }
  }
  return 0.0;
}

double Sampler::SampleAttribute(Rng& rng, double max_value) const {
  return std::clamp(Sample(rng), 0.0, max_value);
}

int Sampler::SampleCapacity(Rng& rng) const {
  const double raw = Sample(rng);
  const auto rounded = static_cast<int>(std::llround(raw));
  return std::max(1, rounded);
}

bool ParseDistributionSpec(const std::string& text, DistributionSpec* spec) {
  const std::vector<std::string> parts = Split(text, ':');
  if (parts.size() != 3) return false;
  const auto p1 = ParseDouble(parts[1]);
  const auto p2 = ParseDouble(parts[2]);
  if (!p1 || !p2) return false;
  if (parts[0] == "uniform") {
    *spec = DistributionSpec::Uniform(*p1, *p2);
  } else if (parts[0] == "normal") {
    *spec = DistributionSpec::Normal(*p1, *p2);
  } else if (parts[0] == "zipf") {
    *spec = DistributionSpec::Zipf(*p1, *p2);
  } else {
    return false;
  }
  return true;
}

}  // namespace geacc
