#include "io/trace_io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "io/instance_io.h"
#include "io/line_reader.h"
#include "util/string_util.h"

namespace geacc {
namespace {

using io_internal::At;
using io_internal::Fail;
using io_internal::LineReader;
using io_internal::ParseCountLine;

// Upper bound on speculative reserve() from untrusted count lines: a
// garbage count must not become a multi-GiB allocation before the first
// malformed line is even reached.
constexpr int64_t kMaxSpeculativeReserve = 1 << 16;

// Parses the tokens after the keyword of an add_user/add_event line:
// "<capacity> <attr...>" with exactly `dim` attributes.
bool ParseAddOperands(const std::vector<std::string>& tokens, int dim,
                      Mutation& mutation) {
  if (dim < 0 || tokens.size() != static_cast<size_t>(dim) + 2) return false;
  const auto capacity = ParseInt(tokens[1]);
  if (!capacity || *capacity < 1) return false;
  mutation.capacity = static_cast<int>(*capacity);
  mutation.attributes.resize(dim);
  for (int j = 0; j < dim; ++j) {
    const auto value = ParseDouble(tokens[2 + j]);
    // Reject "nan"/"inf" (strtod accepts both): these lines come from the
    // wire and the WAL, and a NaN attribute poisons every similarity.
    if (!value || !std::isfinite(*value)) return false;
    mutation.attributes[j] = *value;
  }
  return true;
}

// Parses "<keyword> <id>" or "<keyword> <a> <b>" operand lists of
// non-negative integers into `out` (size names the arity).
bool ParseIntOperands(const std::vector<std::string>& tokens,
                      std::vector<int64_t>& out) {
  if (tokens.size() != out.size() + 1) return false;
  for (size_t i = 0; i < out.size(); ++i) {
    const auto value = ParseInt(tokens[1 + i]);
    if (!value || *value < 0 || *value > INT32_MAX) return false;
    out[i] = *value;
  }
  return true;
}

// Shared core of ParseMutationLine and the trace reader: decodes one
// tokenized mutation line, or returns nullopt with a reason.
std::optional<Mutation> ParseMutationTokens(
    const std::vector<std::string>& tokens, int dim, std::string* error) {
  if (tokens.empty()) {
    Fail(error, "empty mutation line");
    return std::nullopt;
  }
  const std::string& keyword = tokens[0];
  Mutation mutation;
  bool ok = false;
  if (keyword == "add_user" || keyword == "add_event") {
    mutation.kind = keyword == "add_user" ? Mutation::Kind::kAddUser
                                          : Mutation::Kind::kAddEvent;
    ok = ParseAddOperands(tokens, dim, mutation);
  } else if (keyword == "remove_user" || keyword == "remove_event") {
    mutation.kind = keyword == "remove_user" ? Mutation::Kind::kRemoveUser
                                             : Mutation::Kind::kRemoveEvent;
    std::vector<int64_t> operands(1);
    ok = ParseIntOperands(tokens, operands);
    if (ok) mutation.id = static_cast<int32_t>(operands[0]);
  } else if (keyword == "add_conflict") {
    mutation.kind = Mutation::Kind::kAddConflict;
    std::vector<int64_t> operands(2);
    ok = ParseIntOperands(tokens, operands) && operands[0] != operands[1];
    if (ok) {
      mutation.id = static_cast<int32_t>(operands[0]);
      mutation.other = static_cast<int32_t>(operands[1]);
    }
  } else if (keyword == "set_event_capacity" ||
             keyword == "set_user_capacity") {
    mutation.kind = keyword == "set_event_capacity"
                        ? Mutation::Kind::kSetEventCapacity
                        : Mutation::Kind::kSetUserCapacity;
    std::vector<int64_t> operands(2);
    ok = ParseIntOperands(tokens, operands) && operands[1] >= 1;
    if (ok) {
      mutation.id = static_cast<int32_t>(operands[0]);
      mutation.capacity = static_cast<int>(operands[1]);
    }
  } else if (keyword == "set_event_slot") {
    mutation.kind = Mutation::Kind::kSetEventSlot;
    std::vector<int64_t> operands(2);
    // Slot ids are structurally bounded by kMaxTimeSlots; anything larger
    // is an unknown slot regardless of instance state.
    ok = ParseIntOperands(tokens, operands) && operands[1] < kMaxTimeSlots;
    if (ok) {
      mutation.id = static_cast<int32_t>(operands[0]);
      mutation.other = static_cast<int32_t>(operands[1]);
    }
  } else if (keyword == "set_user_availability") {
    mutation.kind = Mutation::Kind::kSetUserAvailability;
    // The mask operand exceeds ParseIntOperands' INT32_MAX ceiling (it is
    // a kMaxTimeSlots-bit word), so it gets its own parse: non-negative —
    // a leading '-' never parses — and < 2^kMaxTimeSlots.
    if (tokens.size() == 3) {
      const auto id = ParseInt(tokens[1]);
      const auto mask = ParseInt(tokens[2]);
      ok = id && *id >= 0 && *id <= INT32_MAX && mask && *mask >= 0 &&
           *mask < (int64_t{1} << kMaxTimeSlots);
      if (ok) {
        mutation.id = static_cast<int32_t>(*id);
        mutation.mask = *mask;
      }
    }
  } else {
    Fail(error, "unknown mutation '" + keyword + "'");
    return std::nullopt;
  }
  if (!ok) {
    Fail(error, "malformed '" + keyword + "' mutation");
    return std::nullopt;
  }
  return mutation;
}

}  // namespace

void WriteMutationLine(const Mutation& mutation, std::ostream& os) {
  os << MutationKindName(mutation.kind);
  switch (mutation.kind) {
    case Mutation::Kind::kAddUser:
    case Mutation::Kind::kAddEvent:
      os << " " << mutation.capacity;
      for (const double x : mutation.attributes) {
        os << " " << StrFormat("%.17g", x);
      }
      break;
    case Mutation::Kind::kRemoveUser:
    case Mutation::Kind::kRemoveEvent:
      os << " " << mutation.id;
      break;
    case Mutation::Kind::kAddConflict:
      os << " " << mutation.id << " " << mutation.other;
      break;
    case Mutation::Kind::kSetEventCapacity:
    case Mutation::Kind::kSetUserCapacity:
      os << " " << mutation.id << " " << mutation.capacity;
      break;
    case Mutation::Kind::kSetEventSlot:
      os << " " << mutation.id << " " << mutation.other;
      break;
    case Mutation::Kind::kSetUserAvailability:
      os << " " << mutation.id << " " << mutation.mask;
      break;
  }
  os << "\n";
}

std::string FormatMutationLine(const Mutation& mutation) {
  std::ostringstream os;
  WriteMutationLine(mutation, os);
  std::string line = os.str();
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

std::optional<Mutation> ParseMutationLine(const std::string& line, int dim,
                                          std::string* error) {
  std::istringstream tokens{line};
  std::vector<std::string> result;
  std::string token;
  while (tokens >> token) result.push_back(std::move(token));
  return ParseMutationTokens(result, dim, error);
}

void WriteTrace(const MutationTrace& trace, std::ostream& os) {
  os << "geacc-trace v1\n";
  WriteInstance(trace.initial, os);
  os << "mutations " << trace.mutations.size() << "\n";
  for (const Mutation& mutation : trace.mutations) {
    WriteMutationLine(mutation, os);
  }
}

std::optional<MutationTrace> ReadTrace(std::istream& is, std::string* error) {
  {
    LineReader header(is);
    const auto tokens = header.NextTokens();
    if (tokens.size() != 2 || tokens[0] != "geacc-trace" ||
        tokens[1] != "v1") {
      Fail(error, At(header, "expected header 'geacc-trace v1'"));
      return std::nullopt;
    }
  }

  std::string instance_error;
  std::optional<Instance> initial = ReadInstance(is, &instance_error);
  if (!initial) {
    Fail(error, "embedded instance: " + instance_error);
    return std::nullopt;
  }
  const int dim = initial->dim();

  LineReader reader(is);
  const int64_t num_mutations =
      ParseCountLine(reader.NextTokens(), "mutations");
  if (num_mutations < 0) {
    Fail(error, At(reader, "expected 'mutations <count>'"));
    return std::nullopt;
  }

  MutationTrace trace{std::move(*initial), {}};
  trace.mutations.reserve(static_cast<size_t>(
      std::min(num_mutations, kMaxSpeculativeReserve)));
  for (int64_t i = 0; i < num_mutations; ++i) {
    const auto tokens = reader.NextTokens();
    if (tokens.empty()) {
      Fail(error, At(reader, "unexpected end of mutation list"));
      return std::nullopt;
    }
    std::string mutation_error;
    std::optional<Mutation> mutation =
        ParseMutationTokens(tokens, dim, &mutation_error);
    if (!mutation) {
      Fail(error, At(reader, mutation_error));
      return std::nullopt;
    }
    trace.mutations.push_back(std::move(*mutation));
  }
  return trace;
}

bool WriteTraceToFile(const MutationTrace& trace, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  WriteTrace(trace, os);
  return static_cast<bool>(os);
}

std::optional<MutationTrace> ReadTraceFromFile(const std::string& path,
                                               std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  return ReadTrace(is, error);
}

}  // namespace geacc
