// Load generator for geacc_serve (DESIGN.md §11).
//
// Drives a running arrangement service over TCP with N client threads,
// each on its own connection, issuing a configurable mix of reads
// (get_assignments / get_attendees / top_k / stats) and mutations. Two
// pacing modes:
//
//   --mode closed   each thread fires its next request the moment the
//                   previous reply lands (throughput test)
//   --mode open     requests are scheduled at --rate QPS total; latency is
//                   measured from the *scheduled* send time, so queueing
//                   delay counts (no coordinated omission)
//
// Reports aggregate throughput and p50/p95/p99 latency, and with --json
// writes a `geacc-bench v1` report whose point carries the new optional
// "latency" object (src/obs/bench_report.h). Overloaded mutate replies are
// counted (svc backpressure working as designed), not errors. Exit is
// non-zero on connect failures or any protocol/network error.
//
//   loadgen --port 7411 --threads 4 --duration_s 5 --json report.json

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "dyn/mutation.h"
#include "exp/metrics.h"
#include "obs/bench_report.h"
#include "svc/client.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using geacc::LatencyRecorder;
using geacc::Mutation;
using geacc::Rng;
using geacc::svc::RpcStatus;
using geacc::svc::ScoredEvent;
using geacc::svc::ServiceStatsView;
using geacc::svc::SocketClient;

struct OpMix {
  double assignments = 0.40;
  double attendees = 0.30;
  double topk = 0.20;
  double stats = 0.05;
  // remainder = mutate
};

struct WorkerResult {
  int64_t requests = 0;
  int64_t assignments = 0;
  int64_t attendees = 0;
  int64_t topk = 0;
  int64_t stats = 0;
  int64_t mutates = 0;
  int64_t overloads = 0;
  int64_t server_errors = 0;
  int64_t protocol_errors = 0;  // protocol + network failures
  LatencyRecorder latency;
};

// Random mutation shaped like trace_gen churn: mostly capacity jitter plus
// some user add/remove, against the id ranges the bootstrap stats report.
Mutation RandomMutation(Rng& rng, const ServiceStatsView& shape, int dim) {
  const double pick = rng.UniformReal(0.0, 1.0);
  if (pick < 0.4) {
    return Mutation::SetUserCapacity(
        rng.UniformInt(0, shape.user_slots - 1), rng.UniformInt(1, 4));
  }
  if (pick < 0.7) {
    return Mutation::SetEventCapacity(
        rng.UniformInt(0, shape.event_slots - 1), rng.UniformInt(1, 50));
  }
  if (pick < 0.9) {
    std::vector<double> attributes(dim);
    for (double& a : attributes) a = rng.UniformReal(0.0, 10000.0);
    return Mutation::AddUser(std::move(attributes), rng.UniformInt(1, 4));
  }
  return Mutation::RemoveUser(rng.UniformInt(0, shape.user_slots - 1));
}

void RunWorker(const std::string& host, int port, double duration_s,
               bool open_loop, double thread_rate, const OpMix& mix, int topk,
               const ServiceStatsView& shape, int dim, uint64_t seed,
               WorkerResult* result) {
  SocketClient client;
  std::string error;
  if (!client.Connect(host, port, &error)) {
    std::fprintf(stderr, "loadgen: %s\n", error.c_str());
    ++result->protocol_errors;
    return;
  }
  Rng rng(seed);
  std::vector<int32_t> ids;
  std::vector<ScoredEvent> scored;
  ServiceStatsView stats;

  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(duration_s));
  const std::chrono::duration<double> interval(
      thread_rate > 0.0 ? 1.0 / thread_rate : 0.0);
  auto scheduled = start;

  while (std::chrono::steady_clock::now() < deadline) {
    if (open_loop) {
      std::this_thread::sleep_until(scheduled);
    }
    const auto issue_time =
        open_loop ? scheduled : std::chrono::steady_clock::now();

    const double pick = rng.UniformReal(0.0, 1.0);
    RpcStatus status;
    if (pick < mix.assignments) {
      status = client.GetAssignments(
          rng.UniformInt(0, shape.user_slots - 1), &ids);
      ++result->assignments;
    } else if (pick < mix.assignments + mix.attendees) {
      status = client.GetAttendees(
          rng.UniformInt(0, shape.event_slots - 1), &ids);
      ++result->attendees;
    } else if (pick < mix.assignments + mix.attendees + mix.topk) {
      status = client.TopKEvents(rng.UniformInt(0, shape.user_slots - 1),
                                 topk, &scored);
      ++result->topk;
    } else if (pick < mix.assignments + mix.attendees + mix.topk + mix.stats) {
      status = client.GetStats(&stats);
      ++result->stats;
    } else {
      status = client.Mutate(RandomMutation(rng, shape, dim), nullptr);
      ++result->mutates;
    }
    ++result->requests;
    result->latency.Record(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - issue_time)
                               .count());

    switch (status) {
      case RpcStatus::kOk:
        break;
      case RpcStatus::kOverloaded:
        ++result->overloads;
        break;
      case RpcStatus::kServerError:
        // Expected under churn: a read can race a remove_user the service
        // applied between our stats snapshot and now — but out-of-range
        // ids never are, so count and report.
        ++result->server_errors;
        break;
      default:
        ++result->protocol_errors;
        std::fprintf(stderr, "loadgen: %s: %s\n", RpcStatusName(status),
                     client.last_error().c_str());
        return;  // connection is gone; stop this worker
    }
    scheduled += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(interval);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7411;
  int threads = 4;
  double duration_s = 5.0;
  std::string mode = "closed";
  double rate = 50000.0;
  int topk = 8;
  double mutate_fraction = 0.05;
  int dim = 20;
  std::string json;
  std::string label = "mixed";
  int64_t seed = 42;

  geacc::FlagSet flags;
  flags.AddString("host", &host, "server host");
  flags.AddInt("port", &port, "server port");
  flags.AddInt("threads", &threads, "client threads (one connection each)");
  flags.AddDouble("duration_s", &duration_s, "run length in seconds");
  flags.AddString("mode", &mode,
                  "closed (back-to-back) | open (paced by --rate)");
  flags.AddDouble("rate", &rate, "open-loop target QPS across all threads");
  flags.AddInt("topk", &topk, "k for top_k requests");
  flags.AddDouble("mutate_fraction", &mutate_fraction,
                  "fraction of requests that are mutations");
  flags.AddInt("dim", &dim,
               "attribute dimension for add_user mutations (must match the "
               "server; it rejects mismatched arity)");
  flags.AddString("json", &json,
                  "write a geacc-bench v1 JSON report to this path");
  flags.AddString("label", &label, "report point label");
  flags.AddInt("seed", &seed, "base RNG seed");
  flags.Parse(argc, argv);

  if (mode != "closed" && mode != "open") {
    std::fprintf(stderr, "loadgen: --mode must be 'closed' or 'open'\n");
    return 2;
  }
  if (threads < 1 || duration_s <= 0.0 || mutate_fraction < 0.0 ||
      mutate_fraction > 1.0) {
    std::fprintf(stderr, "loadgen: bad --threads/--duration_s/"
                         "--mutate_fraction\n");
    return 2;
  }

  // One bootstrap connection: learn the id ranges and prove the server is
  // up before spawning workers.
  SocketClient probe;
  std::string error;
  if (!probe.Connect(host, port, &error)) {
    std::fprintf(stderr, "loadgen: %s\n", error.c_str());
    return 1;
  }
  ServiceStatsView shape;
  if (probe.GetStats(&shape) != RpcStatus::kOk) {
    std::fprintf(stderr, "loadgen: stats probe failed: %s\n",
                 probe.last_error().c_str());
    return 1;
  }
  OpMix mix;
  const double read_scale =
      (1.0 - mutate_fraction) /
      (mix.assignments + mix.attendees + mix.topk + mix.stats);
  mix.assignments *= read_scale;
  mix.attendees *= read_scale;
  mix.topk *= read_scale;
  mix.stats *= read_scale;

  const bool open_loop = mode == "open";
  const double thread_rate = open_loop ? rate / threads : 0.0;

  std::fprintf(stderr,
               "loadgen: %d thread(s), %.1fs, %s loop against %s:%d "
               "(|V| slots %d, |U| slots %d)\n",
               threads, duration_s, mode.c_str(), host.c_str(), port,
               shape.event_slots, shape.user_slots);

  std::vector<WorkerResult> results(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  geacc::WallTimer wall;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back(RunWorker, host, port, duration_s, open_loop,
                         thread_rate, mix, topk, shape, dim,
                         static_cast<uint64_t>(seed) + t, &results[t]);
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed = wall.Seconds();

  WorkerResult total;
  LatencyRecorder all_latency;
  for (const WorkerResult& r : results) {
    total.requests += r.requests;
    total.assignments += r.assignments;
    total.attendees += r.attendees;
    total.topk += r.topk;
    total.stats += r.stats;
    total.mutates += r.mutates;
    total.overloads += r.overloads;
    total.server_errors += r.server_errors;
    total.protocol_errors += r.protocol_errors;
    // Exact percentiles need the union of every thread's samples.
    for (const double sample : r.latency.samples()) {
      all_latency.Record(sample);
    }
  }
  const double p50_ms = all_latency.Percentile(50.0) * 1e3;
  const double p95_ms = all_latency.Percentile(95.0) * 1e3;
  const double p99_ms = all_latency.Percentile(99.0) * 1e3;

  ServiceStatsView final_stats;
  probe.GetStats(&final_stats);

  const double qps = elapsed > 0.0 ? total.requests / elapsed : 0.0;
  std::printf("loadgen: %lld requests in %.2fs = %.0f QPS\n",
              static_cast<long long>(total.requests), elapsed, qps);
  std::printf("loadgen: latency p50 %.3fms  p95 %.3fms  p99 %.3fms "
              "(%lld samples)\n",
              p50_ms, p95_ms, p99_ms,
              static_cast<long long>(all_latency.count()));
  std::printf("loadgen: overloads %lld, server_errors %lld, "
              "protocol_errors %lld\n",
              static_cast<long long>(total.overloads),
              static_cast<long long>(total.server_errors),
              static_cast<long long>(total.protocol_errors));

  if (!json.empty()) {
    geacc::obs::BenchReport report;
    report.bench = "loadgen";
    report.git_rev = geacc::obs::GitRevision();
    for (const auto& [name, value] : flags.Values()) {
      report.flags[name] = value;
    }
    geacc::obs::BenchPoint point;
    point.label = label;
    point.solver = "service";
    point.wall_seconds = elapsed;
    point.max_sum = final_stats.max_sum;
    point.counters["loadgen.requests"] = total.requests;
    point.counters["loadgen.qps"] = static_cast<int64_t>(qps);
    point.counters["loadgen.get_assignments"] = total.assignments;
    point.counters["loadgen.get_attendees"] = total.attendees;
    point.counters["loadgen.top_k"] = total.topk;
    point.counters["loadgen.stats"] = total.stats;
    point.counters["loadgen.mutates"] = total.mutates;
    point.counters["loadgen.overloads"] = total.overloads;
    point.counters["loadgen.server_errors"] = total.server_errors;
    point.counters["loadgen.protocol_errors"] = total.protocol_errors;
    point.counters["svc.applied_seq"] = final_stats.applied_seq;
    point.has_latency = true;
    point.latency = {p50_ms, p95_ms, p99_ms, all_latency.count()};
    report.points.push_back(std::move(point));
    std::string write_error;
    if (!report.WriteFile(json, &write_error)) {
      std::fprintf(stderr, "loadgen: %s\n", write_error.c_str());
      return 1;
    }
    std::printf("wrote geacc-bench v1 report: %s\n", json.c_str());
  }

  return total.protocol_errors == 0 ? 0 : 1;
}
