// Fig. 4, column 2: MaxSum / time / memory vs user capacity, c_u ~
// Uniform[1, max c_u] with max c_u ∈ {2, 4, 6, 8, 10}; other parameters
// Table III defaults.
//
// Expected shape (paper): similar to varying c_v — MaxSum grows with the
// extra user capacity, MinCostFlow's cost tracks the larger flow amount —
// with some fluctuation because consecutive max c_u values are close.

#include <vector>

#include "bench/bench_common.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  geacc::bench::CommonFlags common;
  geacc::FlagSet flags;
  common.Register(flags);
  flags.Parse(argc, argv);
  geacc::bench::ReportContext report("fig4_capacity_u", flags, common);

  geacc::SweepConfig config;
  config.title = "Fig 4 col 2: varying max user capacity";
  config.solvers =
      common.SolverList({"greedy", "mincostflow", "random-v", "random-u"});
  config.repetitions = common.reps;
  config.threads = common.threads;
  config.audit = common.selfcheck;
  common.ApplySolverOptions(&config.solver_options);
  config.seed = static_cast<uint64_t>(common.seed);

  std::vector<geacc::SweepPoint> points;
  for (const int max_cu : {2, 4, 6, 8, 10}) {
    points.push_back({std::to_string(max_cu), [max_cu](uint64_t seed) {
                        geacc::SyntheticConfig synth;
                        synth.user_capacity = geacc::DistributionSpec::Uniform(
                            1.0, static_cast<double>(max_cu));
                        synth.seed = seed;
                        return geacc::GenerateSynthetic(synth);
                      }});
  }

  const geacc::SweepResult result = geacc::RunSweep(config, points);
  geacc::bench::EmitSweep(config, result, "max c_u", common.csv);
  report.AddSweep(config, result);
  report.Write();
  return 0;
}
