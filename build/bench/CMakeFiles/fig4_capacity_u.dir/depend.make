# Empty dependencies file for fig4_capacity_u.
# This may be replaced when dependencies are built.
