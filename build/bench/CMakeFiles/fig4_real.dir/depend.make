# Empty dependencies file for fig4_real.
# This may be replaced when dependencies are built.
