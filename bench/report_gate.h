// The perf-gate regression predicate, extracted from compare_reports so
// its noise-floor semantics are unit-testable (tests/report_gate_test.cc).
//
// A point regresses only when BOTH the baseline and current measurement
// are at or above the noise floor AND the current time grew beyond the
// tolerance band. Sub-floor measurements are dominated by scheduler
// jitter, not code: a 1ms baseline that "doubles" to 2ms says nothing,
// and gating on it makes CI flaky. In particular a sub-floor baseline
// must never flag a regression no matter how large the ratio — the ratio
// against jitter is meaningless.

#ifndef GEACC_BENCH_REPORT_GATE_H_
#define GEACC_BENCH_REPORT_GATE_H_

#include <algorithm>

namespace geacc::bench {

struct GatePolicy {
  // Fractional slowdown allowed before a point regresses (0.25 = +25%).
  double tolerance = 0.25;
  // Noise floor in seconds; a point is gated only when both sides reach it.
  double min_seconds = 0.02;
};

inline bool Regressed(double baseline_seconds, double current_seconds,
                      const GatePolicy& policy) {
  if (std::min(baseline_seconds, current_seconds) < policy.min_seconds) {
    return false;
  }
  return current_seconds > baseline_seconds * (1.0 + policy.tolerance);
}

}  // namespace geacc::bench

#endif  // GEACC_BENCH_REPORT_GATE_H_
