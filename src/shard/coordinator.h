// Shard coordinator: one global arrangement service over N shard services
// (DESIGN.md §16).
//
// Topology: users are hash-partitioned across shards (shard/partition.h);
// the event table and the conflict graph are replicated to every shard by
// broadcasting event-side mutations in submission order, so a global event
// id is the same slot id on every shard. The coordinator owns the global
// id space and keeps a *mirror* DynamicInstance — the authoritative global
// metadata (capacities, active flags, conflicts, attributes for the dump
// path) that admission and validation run against without extra RPCs.
//
// Write path: Apply() validates a global-id mutation against the mirror,
// applies it there, then routes it — event-side mutations broadcast to all
// shards, user-side mutations translate global→local and go to the owner.
// Every routed mutation is appended to a per-shard sent log first, so an
// unknown-outcome transport failure is resolved by reconnecting, reading
// the shard's recovered epoch (its applied-mutation count, replayed from
// its WAL), and resending exactly the log suffix past it — the shard ends
// up with each mutation applied once whether or not the lost ack covered
// it.
//
// Epoch repair (the conflict-resolution pass): after a Barrier() (every
// shard's epoch has caught up to its sent count), the coordinator streams
// every shard's unfiltered positive-similarity candidate edges, translates
// local→global user ids, sorts the union by (similarity desc, event asc,
// user asc), and admits sequentially against the mirror's global event
// capacities, user capacities, and conflict graph — exactly the
// SortAllGreedySolver loop, which is what makes a sharded arrangement
// bit-identical to the single-node solve of the same instance. Conflict
// rejections across a cross-shard edge are charged to the edge's owner
// (lowest-endpoint-home) shard. The admitted per-shard slices are pushed
// back via InstallArrangement (piggybacked on the shards' snapshot
// publication), so every shard serves its slice of the repaired global
// arrangement; installs are not WAL-logged — after a shard failover the
// next pass re-installs.
//
// Reads fan out and merge deterministically: GetAttendees unions every
// shard's local attendees (translated to global ids, sorted ascending);
// TopKEvents asks each shard that holds the user and merges the ranked
// lists with the (similarity desc, event asc) tie-break shared by the
// repair sort.
//
// Thread-safety: every public call serializes on one internal mutex (the
// shard clients are not thread-safe, and repair must not interleave with
// routing); Dispatch() makes the coordinator a WireServer dispatcher, so
// a fleet of wire clients sees a linearizable coordinator.

#ifndef GEACC_SHARD_COORDINATOR_H_
#define GEACC_SHARD_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "core/similarity.h"
#include "core/types.h"
#include "dyn/dynamic_instance.h"
#include "dyn/mutation.h"
#include "exp/metrics.h"
#include "shard/partition.h"
#include "svc/client.h"
#include "svc/snapshot.h"
#include "svc/wire.h"

namespace geacc::shard {

struct CoordinatorOptions {
  // Users per kCandidates page in the repair pass.
  int candidate_page = 1024;

  // Total budget (per mutation) spent retrying kOverloaded submissions
  // before giving up.
  int overload_retry_ms = 2000;

  // How long to keep reattempting reconnect + resync after a shard
  // connection dies before declaring the pass failed.
  int reconnect_timeout_ms = 30000;

  // Barrier wait bound (a shard that cannot catch up within this is
  // stuck, not slow).
  int barrier_timeout_ms = 30000;

  // Keep the per-shard sent-mutation log for failover resend. Costs
  // O(history) memory, so long-lived serve deployments without failover
  // handling can turn it off (a lost connection then fails fast).
  bool track_mutation_log = true;
};

class ShardCoordinator {
 public:
  // Called when shard `shard`'s connection died; returns true once the
  // underlying client is reconnected and usable. The coordinator retries
  // the callback (with backoff) until reconnect_timeout_ms elapses.
  using ReconnectFn = std::function<bool(int shard)>;

  // `clients[i]` serves shard i and must outlive the coordinator. The
  // shards must be empty (no events, no users) and configured score-only
  // (RepairOptions::refill = false, no bootstrap solve) — the coordinator
  // is the sole writer and the only source of arrangement state.
  ShardCoordinator(std::vector<svc::ServiceClient*> clients, int dim,
                   std::unique_ptr<SimilarityFunction> similarity,
                   CoordinatorOptions options = {});

  void set_reconnect_fn(ReconnectFn fn) { reconnect_fn_ = std::move(fn); }

  int num_shards() const { return static_cast<int>(clients_.size()); }
  int dim() const { return mirror_.dim(); }

  // ----- write path (global id space) -----

  // Routes one mutation; empty string on success. `*assigned` receives
  // the new global id for adds (-1 otherwise).
  std::string Apply(const Mutation& mutation, int32_t* assigned = nullptr);

  // Seeds the topology from a dense instance: events in id order, then
  // users, then conflicts — so global ids equal the instance's own ids.
  std::string ApplyInstance(const Instance& instance);

  // Blocks until every shard's epoch reaches its sent-mutation count.
  std::string Barrier();

  // ----- reads (global id space) -----

  std::string GetAssignments(UserId user, std::vector<EventId>* out);
  std::string GetAttendees(EventId event, std::vector<UserId>* out);
  std::string TopKEvents(UserId user, int k,
                         std::vector<svc::ScoredEvent>* out);

  // Merges per-shard ranked lists into one top-k: (similarity desc, event
  // asc), duplicate events keep their first (best-ranked) entry. Exposed
  // for tests; the instance method uses it on the fan-out results.
  static std::vector<svc::ScoredEvent> MergeScoredLists(
      const std::vector<std::vector<svc::ScoredEvent>>& lists, int k);

  // ----- epoch repair -----

  // One full conflict-resolution pass: barrier, candidate collection,
  // global sort-all-greedy admission, per-shard install. Empty string on
  // success.
  std::string RepairPass();

  // Global MaxSum of the last completed pass.
  double global_max_sum() const { return global_max_sum_; }
  int64_t repair_epoch() const { return repair_epoch_; }

  // The last pass's admitted pairs, (global event, global user), in
  // admission order.
  const std::vector<std::pair<EventId, UserId>>& arrangement() const {
    return last_pairs_;
  }

  // ----- export / introspection -----

  // Writes the merged global state — the mirror's dense snapshot and the
  // last pass's arrangement over the same dense ids — in instance_io
  // format, auditable by geacc_audit.
  std::string DumpMerged(const std::string& instance_path,
                         const std::string& arrangement_path);

  // Aggregated coordinator stats: per-shard service counters + RPC
  // latency, repair counters, global MaxSum.
  svc::ShardTopologyStats Stats();

  // Serve the coordinator protocol — plug into WireServer:
  //   kMutate            parsed, validated against the mirror, routed
  //   kGetAssignments /
  //   kGetAttendees /
  //   kTopK              fan-out + deterministic merge
  //   kStats             global view (mirror shape + global MaxSum)
  //   kShardStats        full ShardTopologyStats breakdown
  //   kCandidates /
  //   kInstallArrangement  rejected — shard-only operations
  svc::WireResponse Dispatch(const svc::WireRequest& request);

 private:
  struct ShardRpc {
    int64_t requests = 0;
    int64_t errors = 0;  // server/protocol/network (overloads excluded)
    LatencyRecorder latency;
  };

  // Times `op` against shard `shard` and folds the outcome into that
  // shard's RPC stats.
  svc::RpcStatus Timed(int shard, const std::function<svc::RpcStatus()>& op);

  // Appends to the sent log and delivers, absorbing overload backpressure,
  // early-validation races, and transport failures (via RecoverShard).
  std::string SendMutation(int shard, const Mutation& local_mutation);

  // Delivers sent_log_[shard][index] once; used by SendMutation and the
  // resync path. Does NOT handle transport failures (returns the status).
  svc::RpcStatus DeliverLogged(int shard, size_t index, std::string* error);

  // Reconnect + resync one shard: reconnect_fn_ until live, read the
  // recovered epoch, resend the sent-log suffix past it.
  std::string RecoverShard(int shard);

  // Polls shard `shard` until its epoch >= target.
  std::string BarrierShard(int shard, int64_t target_epoch);

  std::string GetAssignmentsLocked(UserId user, std::vector<EventId>* out);
  std::string GetAttendeesLocked(EventId event, std::vector<UserId>* out);
  std::string TopKEventsLocked(UserId user, int k,
                               std::vector<svc::ScoredEvent>* out);
  std::string ApplyLocked(const Mutation& mutation, int32_t* assigned);
  std::string BarrierLocked();
  std::string RepairPassLocked();
  svc::ShardTopologyStats StatsLocked();

  std::vector<svc::ServiceClient*> clients_;
  CoordinatorOptions options_;
  ReconnectFn reconnect_fn_;

  std::mutex mu_;
  DynamicInstance mirror_;
  ShardMap map_;
  std::vector<std::vector<Mutation>> sent_log_;  // local id space
  std::vector<int64_t> sent_count_;              // == shard target epoch
  std::vector<ShardRpc> rpc_;
  int64_t ops_ = 0;  // accepted coordinator ops (Dispatch ticket space)

  // Last completed repair pass.
  std::vector<std::pair<EventId, UserId>> last_pairs_;
  double global_max_sum_ = 0.0;
  int64_t repair_epoch_ = 0;
  int64_t repair_candidates_ = 0;
  int64_t repair_admitted_ = 0;
  int64_t repair_rejected_capacity_ = 0;
  int64_t repair_rejected_conflict_ = 0;
  int64_t cross_edge_rejects_ = 0;
};

}  // namespace geacc::shard

#endif  // GEACC_SHARD_COORDINATOR_H_
