file(REMOVE_RECURSE
  "CMakeFiles/geacc_algo.dir/algo/brute_force_solver.cc.o"
  "CMakeFiles/geacc_algo.dir/algo/brute_force_solver.cc.o.d"
  "CMakeFiles/geacc_algo.dir/algo/conflict_resolution.cc.o"
  "CMakeFiles/geacc_algo.dir/algo/conflict_resolution.cc.o.d"
  "CMakeFiles/geacc_algo.dir/algo/greedy_solver.cc.o"
  "CMakeFiles/geacc_algo.dir/algo/greedy_solver.cc.o.d"
  "CMakeFiles/geacc_algo.dir/algo/min_cost_flow_solver.cc.o"
  "CMakeFiles/geacc_algo.dir/algo/min_cost_flow_solver.cc.o.d"
  "CMakeFiles/geacc_algo.dir/algo/online_greedy_solver.cc.o"
  "CMakeFiles/geacc_algo.dir/algo/online_greedy_solver.cc.o.d"
  "CMakeFiles/geacc_algo.dir/algo/prune_solver.cc.o"
  "CMakeFiles/geacc_algo.dir/algo/prune_solver.cc.o.d"
  "CMakeFiles/geacc_algo.dir/algo/random_solvers.cc.o"
  "CMakeFiles/geacc_algo.dir/algo/random_solvers.cc.o.d"
  "CMakeFiles/geacc_algo.dir/algo/solvers.cc.o"
  "CMakeFiles/geacc_algo.dir/algo/solvers.cc.o.d"
  "CMakeFiles/geacc_algo.dir/algo/sort_all_greedy_solver.cc.o"
  "CMakeFiles/geacc_algo.dir/algo/sort_all_greedy_solver.cc.o.d"
  "libgeacc_algo.a"
  "libgeacc_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geacc_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
