#include "algo/conflict_resolution.h"

#include <algorithm>
#include <cstdint>

#include "obs/stats.h"
#include "util/check.h"

namespace geacc {

std::vector<EventId> GreedySelectNonConflicting(
    const Instance& instance, UserId u, std::vector<EventId> candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [&](EventId a, EventId b) {
              const double sa = instance.Similarity(a, u);
              const double sb = instance.Similarity(b, u);
              if (sa != sb) return sa > sb;
              return a < b;
            });
  std::vector<EventId> selected;
  selected.reserve(candidates.size());
  const ConflictGraph& conflicts = instance.conflicts();
  for (const EventId v : candidates) {
    bool ok = true;
    for (const EventId kept : selected) {
      if (conflicts.AreConflicting(v, kept)) {
        ok = false;
        break;
      }
    }
    if (ok) selected.push_back(v);
  }
  GEACC_STATS_ADD("resolve.greedy_evictions",
                  static_cast<int64_t>(candidates.size() - selected.size()));
  return selected;
}

std::vector<EventId> ExactSelectNonConflicting(
    const Instance& instance, UserId u, std::vector<EventId> candidates) {
  const int n = static_cast<int>(candidates.size());
  GEACC_CHECK_LE(n, 25) << "exact MWIS candidate set too large";
  if (n == 0) return {};
  std::sort(candidates.begin(), candidates.end());  // deterministic bits

  // Bit i set in conflict_mask[i]: candidate i conflicts with candidate j.
  std::vector<uint32_t> conflict_mask(n, 0);
  const ConflictGraph& conflicts = instance.conflicts();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (conflicts.AreConflicting(candidates[i], candidates[j])) {
        conflict_mask[i] |= 1u << j;
        conflict_mask[j] |= 1u << i;
      }
    }
  }
  std::vector<double> weight(n);
  for (int i = 0; i < n; ++i) {
    weight[i] = instance.Similarity(candidates[i], u);
  }

  uint32_t best_subset = 0;
  double best_weight = 0.0;
  const uint32_t limit = 1u << n;
  for (uint32_t subset = 0; subset < limit; ++subset) {
    double total = 0.0;
    bool independent = true;
    for (int i = 0; i < n && independent; ++i) {
      if ((subset & (1u << i)) == 0) continue;
      if ((conflict_mask[i] & subset) != 0) independent = false;
      total += weight[i];
    }
    // Strict improvement keeps the lowest-bits subset on ties (subsets are
    // enumerated in increasing numeric order).
    if (independent && total > best_weight) {
      best_weight = total;
      best_subset = subset;
    }
  }

  std::vector<EventId> selected;
  for (int i = 0; i < n; ++i) {
    if (best_subset & (1u << i)) selected.push_back(candidates[i]);
  }
  GEACC_STATS_ADD("resolve.exact_evictions",
                  static_cast<int64_t>(candidates.size() - selected.size()));
  GEACC_STATS_ADD("resolve.exact_subsets_scanned", limit);
  return selected;
}

}  // namespace geacc
