# Empty compiler generated dependencies file for fig3_conflict_size.
# This may be replaced when dependencies are built.
