#include "shard/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>
#include <unordered_set>

#include "core/arrangement.h"
#include "io/instance_io.h"
#include "io/trace_io.h"
#include "obs/stats.h"
#include "svc/service.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace geacc::shard {
namespace {

using svc::RpcStatus;
using svc::ServiceStatsView;

constexpr auto kPollInterval = std::chrono::milliseconds(1);
constexpr auto kReconnectInterval = std::chrono::milliseconds(100);

bool IsTransportFailure(RpcStatus status) {
  return status == RpcStatus::kProtocolError ||
         status == RpcStatus::kNetworkError;
}

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace

ShardCoordinator::ShardCoordinator(
    std::vector<svc::ServiceClient*> clients, int dim,
    std::unique_ptr<SimilarityFunction> similarity, CoordinatorOptions options)
    : clients_(std::move(clients)),
      options_(options),
      mirror_(dim, std::move(similarity)),
      map_(static_cast<int>(clients_.size())),
      sent_log_(clients_.size()),
      sent_count_(clients_.size(), 0),
      rpc_(clients_.size()) {
  GEACC_CHECK(!clients_.empty());
}

RpcStatus ShardCoordinator::Timed(
    int shard, const std::function<RpcStatus()>& op) {
  WallTimer timer;
  const RpcStatus status = op();
  rpc_[shard].latency.Record(timer.Seconds());
  ++rpc_[shard].requests;
  if (status != RpcStatus::kOk && status != RpcStatus::kOverloaded) {
    ++rpc_[shard].errors;
  }
  return status;
}

RpcStatus ShardCoordinator::DeliverLogged(int shard, size_t index,
                                          std::string* error) {
  const Mutation& mutation = sent_log_[shard][index];
  int64_t ticket = -1;
  const RpcStatus status = Timed(
      shard, [&] { return clients_[shard]->Mutate(mutation, &ticket); });
  if (status != RpcStatus::kOk && error != nullptr) {
    *error = clients_[shard]->last_error();
  }
  return status;
}

std::string ShardCoordinator::SendMutation(int shard,
                                           const Mutation& local_mutation) {
  if (!options_.track_mutation_log) {
    // No resend log: deliver once, absorbing only backpressure.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.overload_retry_ms);
    for (;;) {
      int64_t ticket = -1;
      const RpcStatus status = Timed(shard, [&] {
        return clients_[shard]->Mutate(local_mutation, &ticket);
      });
      ++sent_count_[shard];
      if (status == RpcStatus::kOk) return "";
      --sent_count_[shard];
      if (status == RpcStatus::kOverloaded &&
          std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(kPollInterval);
        continue;
      }
      return StrFormat("shard %d: mutate failed (%s): %s", shard,
                       RpcStatusName(status),
                       clients_[shard]->last_error().c_str());
    }
  }

  // Log-first so an unknown-outcome transport failure is recoverable: the
  // resync path resends exactly the suffix the shard's recovered epoch
  // says it is missing — this mutation included iff its apply was lost.
  sent_log_[shard].push_back(local_mutation);
  ++sent_count_[shard];
  const size_t index = sent_log_[shard].size() - 1;

  const auto overload_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.overload_retry_ms);
  bool barriered = false;
  for (;;) {
    std::string deliver_error;
    const RpcStatus status = DeliverLogged(shard, index, &deliver_error);
    switch (status) {
      case RpcStatus::kOk:
        return "";
      case RpcStatus::kOverloaded:
        if (std::chrono::steady_clock::now() >= overload_deadline) {
          return StrFormat("shard %d: still overloaded after %d ms", shard,
                           options_.overload_retry_ms);
        }
        std::this_thread::sleep_for(kPollInterval);
        continue;
      case RpcStatus::kServerError: {
        // The wire server validates against its latest *published*
        // snapshot, which can trail a mutation we sent a moment ago (e.g.
        // set_user_capacity right after the add_user that created the
        // slot). Once the shard's epoch covers everything before this
        // mutation the validation state is current — a second rejection
        // is then a real desync.
        if (barriered) {
          return StrFormat("shard %d: rejected mutation %zu: %s", shard,
                           index, deliver_error.c_str());
        }
        barriered = true;
        const std::string barrier_error =
            BarrierShard(shard, static_cast<int64_t>(index));
        if (!barrier_error.empty()) return barrier_error;
        continue;
      }
      default:  // transport — outcome unknown; resync decides
        return RecoverShard(shard);
    }
  }
}

std::string ShardCoordinator::RecoverShard(int shard) {
  if (!reconnect_fn_) {
    return StrFormat("shard %d: connection lost and no reconnect function "
                     "installed", shard);
  }
  if (!options_.track_mutation_log) {
    return StrFormat("shard %d: connection lost and the mutation log is "
                     "disabled — cannot resync", shard);
  }
  GEACC_LOG(WARNING) << "shard " << shard
                     << ": connection lost, reconnecting";
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.reconnect_timeout_ms);
  for (;;) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return StrFormat("shard %d: reconnect timed out after %d ms", shard,
                       options_.reconnect_timeout_ms);
    }
    if (!reconnect_fn_(shard)) {
      std::this_thread::sleep_for(kReconnectInterval);
      continue;
    }

    // The shard's epoch is its applied-mutation count, replayed from its
    // WAL on restart — the durable high-water mark of what survived.
    ServiceStatsView stats;
    if (Timed(shard, [&] { return clients_[shard]->GetStats(&stats); }) !=
        RpcStatus::kOk) {
      std::this_thread::sleep_for(kReconnectInterval);
      continue;
    }
    const int64_t recovered = stats.epoch;
    const int64_t logged = static_cast<int64_t>(sent_log_[shard].size());
    if (recovered > logged) {
      return StrFormat("shard %d recovered epoch %lld past the coordinator "
                       "log (%lld entries) — topology mismatch", shard,
                       static_cast<long long>(recovered),
                       static_cast<long long>(logged));
    }
    GEACC_LOG(WARNING) << "shard " << shard << ": resending mutations ["
                       << recovered << ", " << logged << ")";
    GEACC_STATS_ADD("shard.coord.resyncs", 1);

    bool resync_ok = true;
    for (int64_t i = recovered; i < logged && resync_ok; ++i) {
      bool barriered = false;
      for (;;) {
        std::string deliver_error;
        const RpcStatus status =
            DeliverLogged(shard, static_cast<size_t>(i), &deliver_error);
        if (status == RpcStatus::kOk) break;
        if (status == RpcStatus::kOverloaded) {
          std::this_thread::sleep_for(kPollInterval);
          continue;
        }
        if (status == RpcStatus::kServerError && !barriered) {
          // Same stale-snapshot race as SendMutation: wait for the shard
          // to catch up to everything before entry i, then retry once.
          barriered = true;
          bool caught_up = false;
          while (std::chrono::steady_clock::now() < deadline) {
            ServiceStatsView probe;
            if (Timed(shard, [&] {
                  return clients_[shard]->GetStats(&probe);
                }) != RpcStatus::kOk) {
              break;  // transport again — reconnect from scratch
            }
            if (probe.epoch >= i) {
              caught_up = true;
              break;
            }
            std::this_thread::sleep_for(kPollInterval);
          }
          if (caught_up) continue;
          resync_ok = false;
          break;
        }
        if (status == RpcStatus::kServerError) {
          return StrFormat("shard %d: rejected resent mutation %lld: %s",
                           shard, static_cast<long long>(i),
                           deliver_error.c_str());
        }
        resync_ok = false;  // transport died mid-resync; reconnect again
        break;
      }
    }
    if (resync_ok) {
      GEACC_STATS_ADD("shard.coord.reconnects", 1);
      return "";
    }
  }
}

std::string ShardCoordinator::BarrierShard(int shard, int64_t target_epoch) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.barrier_timeout_ms);
  for (;;) {
    ServiceStatsView stats;
    const RpcStatus status =
        Timed(shard, [&] { return clients_[shard]->GetStats(&stats); });
    if (status == RpcStatus::kOk) {
      if (stats.epoch >= target_epoch) return "";
    } else if (IsTransportFailure(status)) {
      const std::string error = RecoverShard(shard);
      if (!error.empty()) return error;
      continue;
    } else {
      return StrFormat("shard %d: stats failed during barrier: %s", shard,
                       clients_[shard]->last_error().c_str());
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return StrFormat("shard %d: barrier to epoch %lld timed out at %lld",
                       shard, static_cast<long long>(target_epoch),
                       static_cast<long long>(stats.epoch));
    }
    std::this_thread::sleep_for(kPollInterval);
  }
}

std::string ShardCoordinator::BarrierLocked() {
  for (int shard = 0; shard < num_shards(); ++shard) {
    const std::string error = BarrierShard(shard, sent_count_[shard]);
    if (!error.empty()) return error;
  }
  return "";
}

std::string ShardCoordinator::Barrier() {
  std::lock_guard<std::mutex> lock(mu_);
  return BarrierLocked();
}

std::string ShardCoordinator::ApplyLocked(const Mutation& mutation,
                                          int32_t* assigned) {
  if (assigned != nullptr) *assigned = -1;
  const std::string problem = svc::ValidateMutation(mirror_, mutation);
  if (!problem.empty()) return "bad mutation: " + problem;

  int32_t assigned_id = -1;
  std::string error;
  switch (mutation.kind) {
    case Mutation::Kind::kAddUser: {
      const ShardMap::Placement placement = map_.PlaceUser();
      assigned_id = mirror_.Apply(mutation);
      GEACC_CHECK_EQ(assigned_id, map_.global_users() - 1);
      error = SendMutation(placement.shard, mutation);
      break;
    }
    case Mutation::Kind::kRemoveUser:
    case Mutation::Kind::kSetUserCapacity:
    case Mutation::Kind::kSetUserAvailability: {
      const ShardMap::Placement placement = map_.UserHome(mutation.id);
      mirror_.Apply(mutation);
      Mutation local = mutation;
      local.id = placement.local;
      error = SendMutation(placement.shard, local);
      break;
    }
    case Mutation::Kind::kAddEvent:
      assigned_id = mirror_.Apply(mutation);
      for (int shard = 0; shard < num_shards() && error.empty(); ++shard) {
        error = SendMutation(shard, mutation);
      }
      break;
    default:  // remove_event, add_conflict, set_event_capacity,
              // set_event_slot: event-side state is replicated
      mirror_.Apply(mutation);
      for (int shard = 0; shard < num_shards() && error.empty(); ++shard) {
        error = SendMutation(shard, mutation);
      }
      break;
  }
  if (!error.empty()) return error;
  ++ops_;
  GEACC_STATS_ADD("shard.coord.mutations", 1);
  if (assigned != nullptr) *assigned = assigned_id;
  return "";
}

std::string ShardCoordinator::Apply(const Mutation& mutation,
                                    int32_t* assigned) {
  std::lock_guard<std::mutex> lock(mu_);
  return ApplyLocked(mutation, assigned);
}

std::string ShardCoordinator::ApplyInstance(const Instance& instance) {
  std::lock_guard<std::mutex> lock(mu_);
  if (instance.dim() != mirror_.dim()) {
    return StrFormat("instance dim %d != coordinator dim %d", instance.dim(),
                     mirror_.dim());
  }
  if (mirror_.epoch() != 0 || map_.global_users() > 0) {
    return "cannot seed a non-empty topology";
  }
  const int dim = instance.dim();
  for (EventId v = 0; v < instance.num_events(); ++v) {
    const double* row = instance.event_attributes().Row(v);
    const std::string error = ApplyLocked(
        Mutation::AddEvent(std::vector<double>(row, row + dim),
                           instance.event_capacity(v)),
        nullptr);
    if (!error.empty()) return error;
  }
  for (UserId u = 0; u < instance.num_users(); ++u) {
    const double* row = instance.user_attributes().Row(u);
    const std::string error = ApplyLocked(
        Mutation::AddUser(std::vector<double>(row, row + dim),
                          instance.user_capacity(u)),
        nullptr);
    if (!error.empty()) return error;
  }
  for (EventId v = 0; v < instance.num_events(); ++v) {
    for (const EventId w : instance.conflicts().ConflictsOf(v)) {
      if (w <= v) continue;
      const std::string error =
          ApplyLocked(Mutation::AddConflict(v, w), nullptr);
      if (!error.empty()) return error;
    }
  }
  return "";
}

std::string ShardCoordinator::GetAssignmentsLocked(UserId user,
                                                   std::vector<EventId>* out) {
  out->clear();
  if (user < 0 || user >= mirror_.user_slots()) {
    return StrFormat("user id %d out of range", user);
  }
  if (!mirror_.user_active(user)) return "";
  const ShardMap::Placement placement = map_.UserHome(user);
  for (int attempt = 0; attempt < 2; ++attempt) {
    const RpcStatus status = Timed(placement.shard, [&] {
      return clients_[placement.shard]->GetAssignments(placement.local, out);
    });
    if (status == RpcStatus::kOk) return "";  // event ids are global already
    if (IsTransportFailure(status) && attempt == 0) {
      const std::string error = RecoverShard(placement.shard);
      if (!error.empty()) return error;
      continue;
    }
    return StrFormat("shard %d: get_assignments failed: %s", placement.shard,
                     clients_[placement.shard]->last_error().c_str());
  }
  return "unreachable";
}

std::string ShardCoordinator::GetAttendeesLocked(EventId event,
                                                 std::vector<UserId>* out) {
  out->clear();
  if (event < 0 || event >= mirror_.event_slots()) {
    return StrFormat("event id %d out of range", event);
  }
  if (!mirror_.event_active(event)) return "";
  for (int shard = 0; shard < num_shards(); ++shard) {
    std::vector<UserId> locals;
    for (int attempt = 0; attempt < 2; ++attempt) {
      const RpcStatus status = Timed(shard, [&] {
        return clients_[shard]->GetAttendees(event, &locals);
      });
      if (status == RpcStatus::kOk) break;
      if (IsTransportFailure(status) && attempt == 0) {
        const std::string error = RecoverShard(shard);
        if (!error.empty()) return error;
        continue;
      }
      return StrFormat("shard %d: get_attendees failed: %s", shard,
                       clients_[shard]->last_error().c_str());
    }
    for (const UserId local : locals) {
      const int32_t global = map_.ToGlobalUser(shard, local);
      if (global < 0) {
        return StrFormat("shard %d reported unknown local user %d", shard,
                         local);
      }
      out->push_back(global);
    }
  }
  // Deterministic merge: ascending global ids, independent of shard count
  // and reply order.
  std::sort(out->begin(), out->end());
  return "";
}

std::vector<svc::ScoredEvent> ShardCoordinator::MergeScoredLists(
    const std::vector<std::vector<svc::ScoredEvent>>& lists, int k) {
  std::vector<svc::ScoredEvent> merged;
  if (k <= 0) return merged;
  for (const auto& list : lists) {
    merged.insert(merged.end(), list.begin(), list.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const svc::ScoredEvent& a, const svc::ScoredEvent& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.event < b.event;
            });
  // Replicas can answer with the same event; the first (best-ranked)
  // occurrence wins.
  std::unordered_set<EventId> seen;
  std::vector<svc::ScoredEvent> result;
  for (const svc::ScoredEvent& entry : merged) {
    if (!seen.insert(entry.event).second) continue;
    result.push_back(entry);
    if (static_cast<int>(result.size()) >= k) break;
  }
  return result;
}

std::string ShardCoordinator::TopKEventsLocked(
    UserId user, int k, std::vector<svc::ScoredEvent>* out) {
  out->clear();
  if (user < 0 || user >= mirror_.user_slots() || k < 0) {
    return StrFormat("bad top-k query (user %d, k %d)", user, k);
  }
  if (!mirror_.user_active(user) || k == 0) return "";
  // Fan out to every shard that holds the user (with hash partitioning
  // that is exactly its home shard — replicated-user topologies would
  // contribute more lists) and merge deterministically.
  const ShardMap::Placement placement = map_.UserHome(user);
  std::vector<std::vector<svc::ScoredEvent>> lists;
  for (int shard = 0; shard < num_shards(); ++shard) {
    const int32_t local = shard == placement.shard ? placement.local : -1;
    if (local < 0) continue;
    std::vector<svc::ScoredEvent> list;
    for (int attempt = 0; attempt < 2; ++attempt) {
      const RpcStatus status = Timed(shard, [&] {
        return clients_[shard]->TopKEvents(local, k, &list);
      });
      if (status == RpcStatus::kOk) break;
      if (IsTransportFailure(status) && attempt == 0) {
        const std::string error = RecoverShard(shard);
        if (!error.empty()) return error;
        continue;
      }
      return StrFormat("shard %d: top_k failed: %s", shard,
                       clients_[shard]->last_error().c_str());
    }
    lists.push_back(std::move(list));
  }
  *out = MergeScoredLists(lists, k);
  return "";
}

std::string ShardCoordinator::GetAssignments(UserId user,
                                             std::vector<EventId>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetAssignmentsLocked(user, out);
}

std::string ShardCoordinator::GetAttendees(EventId event,
                                           std::vector<UserId>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetAttendeesLocked(event, out);
}

std::string ShardCoordinator::TopKEvents(UserId user, int k,
                                         std::vector<svc::ScoredEvent>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  return TopKEventsLocked(user, k, out);
}

std::string ShardCoordinator::RepairPassLocked() {
  WallTimer timer;
  std::string error = BarrierLocked();
  if (!error.empty()) return error;

  // Stream every shard's unfiltered candidate edges, translated into the
  // global user id space.
  struct GlobalCandidate {
    double similarity;
    EventId event;
    UserId user;  // global
  };
  std::vector<GlobalCandidate> candidates;
  for (int shard = 0; shard < num_shards(); ++shard) {
    const int32_t local_slots = map_.LocalUserCount(shard);
    for (int32_t first = 0; first < local_slots;
         first += options_.candidate_page) {
      std::vector<svc::ScoredCandidate> page;
      for (;;) {
        const RpcStatus status = Timed(shard, [&] {
          return clients_[shard]->Candidates(first, options_.candidate_page,
                                             &page);
        });
        if (status == RpcStatus::kOk) break;
        if (IsTransportFailure(status)) {
          error = RecoverShard(shard);
          if (error.empty()) error = BarrierShard(shard, sent_count_[shard]);
          if (!error.empty()) return error;
          continue;
        }
        return StrFormat("shard %d: candidates failed: %s", shard,
                         clients_[shard]->last_error().c_str());
      }
      for (const svc::ScoredCandidate& candidate : page) {
        const int32_t global = map_.ToGlobalUser(shard, candidate.user);
        if (global < 0) {
          return StrFormat("shard %d reported unknown local user %d", shard,
                           candidate.user);
        }
        // Slot-availability gate: a pair forbidden by the mirror's
        // time-slot annotations must never reach admission — the shard's
        // arranger would reject the install as infeasible.
        if (!mirror_.PairAllowed(candidate.event, global)) continue;
        candidates.push_back({candidate.similarity, candidate.event, global});
      }
    }
  }

  // Global admission — the SortAllGreedySolver loop verbatim, over global
  // ids and the mirror's capacities and conflict graph. Global user ids
  // equal single-node slot ids and the shard-computed similarities are
  // bit-identical to local recomputation, so this ordering (and hence the
  // admitted set and the running sum) matches the single-node solve.
  std::sort(candidates.begin(), candidates.end(),
            [](const GlobalCandidate& a, const GlobalCandidate& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              if (a.event != b.event) return a.event < b.event;
              return a.user < b.user;
            });

  std::vector<int> event_capacity(mirror_.event_slots(), 0);
  std::vector<int> user_capacity(mirror_.user_slots(), 0);
  for (EventId v = 0; v < mirror_.event_slots(); ++v) {
    if (mirror_.event_active(v)) event_capacity[v] = mirror_.event_capacity(v);
  }
  for (UserId u = 0; u < mirror_.user_slots(); ++u) {
    if (mirror_.user_active(u)) user_capacity[u] = mirror_.user_capacity(u);
  }
  const ConflictGraph& conflicts = mirror_.conflicts();

  std::vector<std::vector<EventId>> held(mirror_.user_slots());
  std::vector<std::vector<std::pair<int32_t, int32_t>>> installs(num_shards());
  std::vector<double> shard_sums(num_shards(), 0.0);
  std::vector<std::pair<EventId, UserId>> admitted;
  double global_sum = 0.0;
  int64_t rejected_capacity = 0;
  int64_t rejected_conflict = 0;
  int64_t cross_edge = 0;

  for (const GlobalCandidate& candidate : candidates) {
    if (event_capacity[candidate.event] <= 0 ||
        user_capacity[candidate.user] <= 0) {
      ++rejected_capacity;
      continue;
    }
    EventId blocking = kInvalidEvent;
    for (const EventId w : held[candidate.user]) {
      if (conflicts.AreConflicting(candidate.event, w)) {
        blocking = w;
        break;
      }
    }
    if (blocking != kInvalidEvent) {
      ++rejected_conflict;
      // Edge-ownership accounting: the lowest endpoint home owns the
      // admit/reject decision; a cross-shard edge doing the rejecting is
      // the case single-shard repair never sees.
      if (IsCrossShardEdge(candidate.event, blocking, num_shards())) {
        ++cross_edge;
      }
      continue;
    }
    held[candidate.user].push_back(candidate.event);
    --event_capacity[candidate.event];
    --user_capacity[candidate.user];
    admitted.emplace_back(candidate.event, candidate.user);
    global_sum += candidate.similarity;
    const ShardMap::Placement placement = map_.UserHome(candidate.user);
    installs[placement.shard].emplace_back(candidate.event, placement.local);
    shard_sums[placement.shard] += candidate.similarity;
  }

  // Install each shard's slice (admission order preserved), then wait for
  // the shard to apply and publish it.
  for (int shard = 0; shard < num_shards(); ++shard) {
    std::vector<std::pair<EventId, UserId>> pairs;
    pairs.reserve(installs[shard].size());
    for (const auto& [event, local] : installs[shard]) {
      pairs.emplace_back(event, local);
    }
    for (;;) {
      int64_t ticket = -1;
      const RpcStatus status = Timed(shard, [&] {
        return clients_[shard]->InstallArrangement(
            pairs, DoubleBits(shard_sums[shard]), &ticket);
      });
      if (status == RpcStatus::kOverloaded) {
        std::this_thread::sleep_for(kPollInterval);
        continue;
      }
      if (IsTransportFailure(status)) {
        error = RecoverShard(shard);
        if (error.empty()) error = BarrierShard(shard, sent_count_[shard]);
        if (!error.empty()) return error;
        continue;  // re-send the install against the recovered shard
      }
      if (status != RpcStatus::kOk) {
        return StrFormat("shard %d: install failed: %s", shard,
                         clients_[shard]->last_error().c_str());
      }
      // Wait until the install's snapshot is published, then verify the
      // shard adopted the slice (a rejected install fails silently at the
      // writer — surface it here instead of serving a stale slice).
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(options_.barrier_timeout_ms);
      ServiceStatsView stats;
      bool applied = false;
      bool transport_lost = false;
      while (std::chrono::steady_clock::now() < deadline) {
        const RpcStatus poll_status =
            Timed(shard, [&] { return clients_[shard]->GetStats(&stats); });
        if (poll_status != RpcStatus::kOk) {
          if (!IsTransportFailure(poll_status)) {
            return StrFormat("shard %d: stats failed after install: %s",
                             shard, clients_[shard]->last_error().c_str());
          }
          transport_lost = true;
          break;
        }
        if (stats.applied_seq >= ticket) {
          applied = true;
          break;
        }
        std::this_thread::sleep_for(kPollInterval);
      }
      if (transport_lost) {
        error = RecoverShard(shard);
        if (error.empty()) error = BarrierShard(shard, sent_count_[shard]);
        if (!error.empty()) return error;
        continue;  // the install died with the old incarnation; re-send
      }
      if (!applied) {
        return StrFormat("shard %d: install not applied within %d ms", shard,
                         options_.barrier_timeout_ms);
      }
      if (stats.pairs != static_cast<int64_t>(pairs.size())) {
        return StrFormat("shard %d rejected install: holds %lld pairs, "
                         "expected %zu", shard,
                         static_cast<long long>(stats.pairs), pairs.size());
      }
      break;
    }
  }

  last_pairs_ = std::move(admitted);
  global_max_sum_ = global_sum;
  ++repair_epoch_;
  repair_candidates_ = static_cast<int64_t>(candidates.size());
  repair_admitted_ = static_cast<int64_t>(last_pairs_.size());
  repair_rejected_capacity_ = rejected_capacity;
  repair_rejected_conflict_ = rejected_conflict;
  cross_edge_rejects_ = cross_edge;
  GEACC_STATS_ADD("shard.coord.repair_passes", 1);
  GEACC_STATS_ADD("shard.coord.repair_candidates", repair_candidates_);
  GEACC_STATS_ADD("shard.coord.repair_admitted", repair_admitted_);
  GEACC_LOG(INFO) << "repair pass " << repair_epoch_ << ": "
                  << repair_admitted_ << "/" << repair_candidates_
                  << " candidates admitted, MaxSum " << global_max_sum_
                  << " (" << timer.Seconds() << "s)";
  return "";
}

std::string ShardCoordinator::RepairPass() {
  std::lock_guard<std::mutex> lock(mu_);
  return RepairPassLocked();
}

std::string ShardCoordinator::DumpMerged(const std::string& instance_path,
                                         const std::string& arrangement_path) {
  std::lock_guard<std::mutex> lock(mu_);
  DynamicInstance::SnapshotMap map;
  const Instance dense = mirror_.Snapshot(&map);
  if (!instance_path.empty() && !WriteInstanceToFile(dense, instance_path)) {
    return "cannot write " + instance_path;
  }
  if (arrangement_path.empty()) return "";
  Arrangement arrangement(dense.num_events(), dense.num_users());
  for (const auto& [event, user] : last_pairs_) {
    const int dense_event = map.event_to_dense[event];
    const int dense_user = map.user_to_dense[user];
    // Entities removed since the last pass drop out of the dense view —
    // and their pairs drop with them, same as the single-node snapshot.
    if (dense_event < 0 || dense_user < 0) continue;
    arrangement.Add(dense_event, dense_user);
  }
  if (!WriteArrangementToFile(arrangement, arrangement_path)) {
    return "cannot write " + arrangement_path;
  }
  return "";
}

svc::ShardTopologyStats ShardCoordinator::StatsLocked() {
  svc::ShardTopologyStats topology;
  topology.shard_count = num_shards();
  topology.repair_epoch = repair_epoch_;
  topology.global_max_sum = global_max_sum_;
  topology.repair_candidates = repair_candidates_;
  topology.repair_admitted = repair_admitted_;
  topology.repair_rejected_capacity = repair_rejected_capacity_;
  topology.repair_rejected_conflict = repair_rejected_conflict_;
  topology.cross_edge_rejects = cross_edge_rejects_;
  for (int shard = 0; shard < num_shards(); ++shard) {
    svc::ShardStatsEntry entry;
    entry.shard = shard;
    Timed(shard, [&] { return clients_[shard]->GetStats(&entry.stats); });
    entry.rpc_requests = rpc_[shard].requests;
    entry.rpc_errors = rpc_[shard].errors;
    entry.rpc_p50_ms = rpc_[shard].latency.Percentile(50.0) * 1e3;
    entry.rpc_p95_ms = rpc_[shard].latency.Percentile(95.0) * 1e3;
    entry.rpc_p99_ms = rpc_[shard].latency.Percentile(99.0) * 1e3;
    topology.shards.push_back(std::move(entry));
  }
  return topology;
}

svc::ShardTopologyStats ShardCoordinator::Stats() {
  std::lock_guard<std::mutex> lock(mu_);
  return StatsLocked();
}

svc::WireResponse ShardCoordinator::Dispatch(const svc::WireRequest& request) {
  using svc::MsgType;
  svc::WireResponse response;
  const auto error_response = [](std::string message) {
    svc::WireResponse error;
    error.type = MsgType::kError;
    error.message = std::move(message);
    return error;
  };
  switch (request.type) {
    case MsgType::kPing:
      response.type = MsgType::kPong;
      return response;
    case MsgType::kGetAssignments: {
      const std::string error = GetAssignments(request.id, &response.ids);
      if (!error.empty()) return error_response(error);
      response.type = MsgType::kIdList;
      return response;
    }
    case MsgType::kGetAttendees: {
      const std::string error = GetAttendees(request.id, &response.ids);
      if (!error.empty()) return error_response(error);
      response.type = MsgType::kIdList;
      return response;
    }
    case MsgType::kTopK: {
      const std::string error =
          TopKEvents(request.id, request.k, &response.scored);
      if (!error.empty()) return error_response(error);
      response.type = MsgType::kScoredList;
      return response;
    }
    case MsgType::kStats: {
      std::lock_guard<std::mutex> lock(mu_);
      response.type = MsgType::kStatsReply;
      response.stats.epoch = mirror_.epoch();
      response.stats.applied_seq = ops_;
      response.stats.pairs = static_cast<int64_t>(last_pairs_.size());
      response.stats.active_events = mirror_.num_active_events();
      response.stats.active_users = mirror_.num_active_users();
      response.stats.event_slots = mirror_.event_slots();
      response.stats.user_slots = mirror_.user_slots();
      response.stats.max_sum = global_max_sum_;
      return response;
    }
    case MsgType::kMutate: {
      std::string parse_error;
      std::optional<Mutation> mutation =
          ParseMutationLine(request.payload, mirror_.dim(), &parse_error);
      if (!mutation) return error_response("bad mutation: " + parse_error);
      std::lock_guard<std::mutex> lock(mu_);
      const std::string error = ApplyLocked(*mutation, nullptr);
      if (!error.empty()) return error_response(error);
      response.type = MsgType::kMutateAck;
      response.ticket = ops_;
      return response;
    }
    case MsgType::kShardStats:
      response.type = MsgType::kShardStatsReply;
      response.shard_stats = Stats();
      return response;
    case MsgType::kCandidates:
    case MsgType::kInstallArrangement:
      return error_response("shard-only operation sent to the coordinator");
    default:
      return error_response("unexpected message type");
  }
}

}  // namespace geacc::shard
