#include "util/arena.h"

#include <algorithm>

#include "util/check.h"

namespace geacc {

// Requests are rounded up to kAlignment, so `used_` is always a multiple
// of kAlignment and every returned pointer inherits the chunk base's
// alignment.
void* Arena::AllocBytes(std::size_t bytes) {
  bytes = (std::max<std::size_t>(bytes, 1) + kAlignment - 1) &
          ~(kAlignment - 1);
  if (current_ < chunks_.size() && used_ + bytes <= chunks_[current_].size) {
    void* p = chunks_[current_].base + used_;
    used_ += bytes;
    return p;
  }
  return AllocSlow(bytes);
}

void* Arena::AllocSlow(std::size_t bytes) {
  // Reuse a retained later chunk if one fits; chunks that are too small
  // for this request are skipped (their space returns at the next Rewind
  // past them).
  while (current_ + 1 < chunks_.size()) {
    ++current_;
    used_ = 0;
    if (bytes <= chunks_[current_].size) {
      used_ = bytes;
      return chunks_[current_].base;
    }
  }
  std::size_t size = chunks_.empty()
                         ? kMinChunkBytes
                         : std::min(chunks_.back().size * 2, kMaxChunkBytes);
  size = std::max(size, bytes);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size + kAlignment);
  const auto raw = reinterpret_cast<std::uintptr_t>(chunk.data.get());
  const auto aligned = (raw + kAlignment - 1) & ~(kAlignment - 1);
  chunk.base = reinterpret_cast<std::byte*>(aligned);
  chunk.size = size;
  chunks_.push_back(std::move(chunk));
  current_ = chunks_.size() - 1;
  used_ = bytes;
  return chunks_[current_].base;
}

void Arena::Rewind(Mark m) {
  GEACC_CHECK(m.chunk < current_ ||
              (m.chunk == current_ && m.used <= used_) || chunks_.empty())
      << "arena Rewind to a mark newer than the top";
  current_ = m.chunk;
  used_ = m.used;
}

void Arena::Reset() {
  current_ = 0;
  used_ = 0;
}

std::size_t Arena::BytesUsed() const {
  std::size_t total = 0;
  // Chunks before the current one count in full (skipped slack included).
  for (std::size_t i = 0; i < current_ && i < chunks_.size(); ++i) {
    total += chunks_[i].size;
  }
  return total + used_;
}

std::size_t Arena::BytesReserved() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

Arena& GetScratchArena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace geacc
