// Microbenchmarks: similarity kernels across dimensionality (the innermost
// loop of every solver).
//
// Two families:
//  * BM_Similarity/<fn>/<dim>       — the per-pair virtual-call path
//    (one Compute per item), the scalar baseline of DESIGN.md §15.
//  * BM_SimilarityBatch/<fn>/<dim>  — one ComputeBatch over a 4096-row
//    blocked mirror per iteration (items = rows), dispatched at the
//    active SIMD level (`--simd={auto,avx2,scalar}` pins it).
//  * BM_VaScanBatch/<dim>           — the batched VA-file signature scan
//    (table lookup + accumulate per signature byte).
//
// Per-item times are comparable across families (items_per_second), which
// is how the kernels' ≥3× target is checked (EXPERIMENTS.md "kernels").
// With --json, every point carries a "kernels" section recording the
// dispatch level the run actually used.

#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include <memory>
#include <string>
#include <vector>

#include "core/attributes.h"
#include "core/similarity.h"
#include "simd/kernels.h"
#include "simd/simd.h"
#include "util/rng.h"

namespace geacc {
namespace {

// Rows per batched iteration (128 blocks). Sized so the blocked mirror
// stays cache-resident at every benched dim (1024 × 100 × 8 B = 800 KiB),
// measuring kernel throughput rather than DRAM bandwidth — the per-pair
// family's two vectors are L1-resident, so this keeps the families
// comparable.
constexpr int kBatchRows = 1024;
constexpr int kVaCells = 16;  // 4 bits/dim, the VA-file default

void FillRandom(std::vector<double>& v, Rng& rng) {
  for (double& x : v) x = rng.UniformReal(0.0, 100.0);
}

void BM_Similarity(benchmark::State& state, const std::string& name) {
  const int dim = static_cast<int>(state.range(0));
  const auto sim = MakeSimilarity(name, name == "rbf" ? 25.0 : 100.0);
  Rng rng(1);
  std::vector<double> a(dim), b(dim);
  FillRandom(a, rng);
  FillRandom(b, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim->Compute(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SimilarityBatch(benchmark::State& state, const std::string& name) {
  const int dim = static_cast<int>(state.range(0));
  const auto sim = MakeSimilarity(name, name == "rbf" ? 25.0 : 100.0);
  Rng rng(1);
  AttributeMatrix points(kBatchRows, dim);
  for (int i = 0; i < kBatchRows; ++i) {
    double* row = points.MutableRow(i);
    for (int j = 0; j < dim; ++j) row[j] = rng.UniformReal(0.0, 100.0);
  }
  std::vector<double> query(dim);
  FillRandom(query, rng);
  const BlockedAttributes& blocked = points.Blocked();  // build off the clock
  std::vector<double> out(kBatchRows);
  for (auto _ : state) {
    sim->ComputeBatch(query.data(), blocked, simd::FpMode::kStrict,
                      out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows);
}

void BM_VaScanBatch(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  Rng rng(1);
  // Random blocked signatures + a random per-query contribution table —
  // the scan's cost does not depend on the values, only the shapes.
  std::vector<uint8_t> sig(
      static_cast<size_t>(simd::BlockedSize(kBatchRows, dim)));
  for (uint8_t& s : sig) {
    s = static_cast<uint8_t>(rng.UniformInt(0, kVaCells - 1));
  }
  std::vector<double> table(static_cast<size_t>(dim) * kVaCells);
  FillRandom(table, rng);
  std::vector<double> out(kBatchRows);
  for (auto _ : state) {
    simd::BatchVaLowerBound(simd::ActiveLevel(), table.data(), kVaCells,
                            sig.data(), dim, kBatchRows, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows);
}

void RegisterAll() {
  for (const char* name : {"euclidean", "cosine", "rbf", "dot"}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Similarity/") + name).c_str(),
        [name](benchmark::State& state) { BM_Similarity(state, name); })
        ->Arg(2)
        ->Arg(20)
        ->Arg(100);
    benchmark::RegisterBenchmark(
        (std::string("BM_SimilarityBatch/") + name).c_str(),
        [name](benchmark::State& state) { BM_SimilarityBatch(state, name); })
        ->Arg(2)
        ->Arg(20)
        ->Arg(100);
  }
  benchmark::RegisterBenchmark("BM_VaScanBatch", BM_VaScanBatch)
      ->Arg(2)
      ->Arg(20)
      ->Arg(100);
}

const bool kRegistered = (RegisterAll(), true);

// --json hook: stamp every point with the dispatch level this process ran
// and the eval counts implied by the iteration count (batched families
// score kBatchRows rows per iteration; the per-pair family one).
void AttachKernelsSection(obs::BenchPoint& point) {
  point.has_kernels = true;
  point.kernels.dispatch = simd::LevelName(simd::ActiveLevel());
  point.kernels.block = simd::kBlockRows;
  const int64_t iterations = point.counters["iterations"];
  if (point.label.rfind("BM_SimilarityBatch", 0) == 0 ||
      point.label.rfind("BM_VaScanBatch", 0) == 0) {
    point.kernels.batched_evals = iterations * kBatchRows;
  } else {
    point.kernels.scalar_evals = iterations;
  }
}

}  // namespace
}  // namespace geacc

GEACC_MICRO_MAIN_WITH_HOOK("micro_similarity", geacc::AttachKernelsSection)
