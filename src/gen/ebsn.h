// EBSN (Meetup-like) dataset simulator — the Table II substitute.
//
// The paper's real dataset is a Meetup crawl [1]: users and events carry
// tag multisets; events inherit the tags of the "group" (community) that
// created them; tags are merged into the 20 most popular attributes and
// each attribute value is the merged-tag count normalized by the entity's
// total tag count; users/events are clustered per city.
//
// We cannot redistribute the crawl, so this module reproduces its
// *geometry* synthetically:
//   * a tag vocabulary with Zipf-skewed popularity;
//   * interest groups, each holding a popularity-weighted tag profile;
//   * users joining 1–2 groups and drawing their tags mostly from the
//     joined profiles (with uniform noise);
//   * events created by groups, drawing tags from the creator's profile;
//   * tag counts L1-normalized exactly as Section V describes.
// Capacities and conflicts are synthesized on top, exactly as the paper
// itself does for the real dataset (Table II's c_v, c_u, |CF| columns).
//
// City presets match Table II's |V|/|U|: Vancouver 225/2012, Auckland
// 37/569, Singapore 87/1500.

#ifndef GEACC_GEN_EBSN_H_
#define GEACC_GEN_EBSN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.h"
#include "gen/distributions.h"

namespace geacc {

struct EbsnConfig {
  std::string city = "auckland";
  int num_events = 37;
  int num_users = 569;

  int num_tags = 20;         // merged popular tags = attribute dimension
  int num_groups = 12;       // interest communities
  int tags_per_group = 6;    // distinct tags in a group profile
  int tags_per_user = 10;    // original (pre-merge) tags per user
  int tags_per_event = 8;    // original tags per event
  double tag_zipf_skew = 1.1;  // popularity skew of the tag vocabulary
  double noise = 0.2;        // prob. a tag draw ignores the group profile

  // Table II: capacities Uniform[1,50]/[1,4] or Normal(25,12.5)/(2,1).
  DistributionSpec event_capacity = DistributionSpec::Uniform(1.0, 50.0);
  DistributionSpec user_capacity = DistributionSpec::Uniform(1.0, 4.0);

  // |CF| / (|V|(|V|-1)/2) ∈ {0, 0.25, 0.5, 0.75, 1} in the paper.
  double conflict_density = 0.25;

  uint64_t seed = 42;
};

// Preset for "vancouver", "auckland", or "singapore" (Table II sizes).
// Unknown names abort.
EbsnConfig EbsnCityPreset(const std::string& city);

Instance GenerateEbsn(const EbsnConfig& config);

// Table II-style statistics of a generated instance (used by bench/fig4_real
// to print the dataset table).
struct EbsnStats {
  std::string city;
  int num_events = 0;
  int num_users = 0;
  double mean_event_tags = 0.0;   // mean L0 (non-zero attributes) of events
  double mean_user_tags = 0.0;
  double conflict_density = 0.0;
};

EbsnStats SummarizeEbsn(const std::string& city, const Instance& instance);

}  // namespace geacc

#endif  // GEACC_GEN_EBSN_H_
