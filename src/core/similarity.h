// Similarity functions between event and user attribute vectors.
//
// The paper's evaluation uses Equation (1):
//
//     sim(l_v, l_u) = 1 - ||l_v - l_u||_2 / sqrt(d * T^2)
//
// where sqrt(d*T^2) is the largest Euclidean distance possible in [0,T]^d,
// so sim ∈ [0, 1]. The paper notes "other similarity functions are
// applicable"; we also provide cosine similarity and an RBF kernel.
//
// Implementations declare whether they are a *decreasing* function of
// Euclidean distance (IsEuclideanMonotone): for such functions nearest-
// neighbor-by-distance equals nearest-neighbor-by-similarity, which lets
// Greedy-GEACC use spatial indexes (kd-tree) for its NN cursors.
//
// ## Per-pair vs batch evaluation
//
// Compute() scores one pair in O(dim). ComputeBatch() scores one query
// against a whole BlockedAttributes mirror in O(rows × dim) with the
// SIMD kernels of src/simd/ — same results, bit-for-bit, in the default
// strict FP mode (the full contract, including when FpMode::kFast may
// deviate, lives in simd/kernels.h and DESIGN.md §15). Hot callers
// (pair-cost construction, NN-cursor refill, search tables) batch;
// everything else may keep calling Compute().
//
// ## Non-finite inputs
//
// All functions assume finite inputs and then return finite values in
// [0, 1]; the io layer enforces finiteness at every untrusted boundary,
// so attribute data reaching these functions is finite by invariant
// (attributes.h). NaN inputs would propagate (Compute can return NaN) —
// there is deliberately no per-call isnan defense on this innermost loop.
//
// Thread-safety: all similarity objects are immutable after construction;
// Compute/ComputeBatch are const and safe to call concurrently.

#ifndef GEACC_CORE_SIMILARITY_H_
#define GEACC_CORE_SIMILARITY_H_

#include <memory>
#include <string>

#include "simd/kernels.h"

namespace geacc {

class BlockedAttributes;

class SimilarityFunction {
 public:
  virtual ~SimilarityFunction() = default;

  // Similarity of two length-`dim` attribute vectors; must lie in [0, 1].
  // O(dim), no allocation.
  virtual double Compute(const double* a, const double* b, int dim) const = 0;

  // Writes out[i] = Compute(query, row i of points, points.dim()) for all
  // i ∈ [0, points.rows()). `query` must have points.dim() entries; `out`
  // must hold points.rows() doubles (no alignment requirement — the
  // aligned data is inside `points`). O(rows × dim), no allocation.
  //
  // In FpMode::kStrict (the default everywhere) results are bit-identical
  // to per-pair Compute() at every dispatch level; kFast permits FMA
  // contraction in the reductions and may differ in the last ulp — only
  // the solver-internal table/pair-cost builds opt in, and only when
  // SolverOptions::fp_mode == "fast" (see simd/kernels.h).
  //
  // The base implementation is a per-pair Compute() loop (counted as
  // simd.scalar_evals); the four built-ins override it with the batched
  // kernels (counted as simd.batched_evals). Custom similarities get
  // correct batch behavior for free and can override for speed.
  virtual void ComputeBatch(const double* query,
                            const BlockedAttributes& points,
                            simd::FpMode fp, double* out) const;

  // True iff Compute is a strictly decreasing function of the Euclidean
  // distance between a and b (given fixed dim).
  virtual bool IsEuclideanMonotone() const = 0;

  virtual std::string Name() const = 0;

  // The constructor parameter for MakeSimilarity(Name(), Param());
  // parameterless similarities return 0. Used by serialization.
  virtual double Param() const { return 0.0; }

  virtual std::unique_ptr<SimilarityFunction> Clone() const = 0;
};

// Equation (1). `max_attribute` is T; attributes must lie in [0, T].
class EuclideanSimilarity final : public SimilarityFunction {
 public:
  explicit EuclideanSimilarity(double max_attribute);

  double Compute(const double* a, const double* b, int dim) const override;
  void ComputeBatch(const double* query, const BlockedAttributes& points,
                    simd::FpMode fp, double* out) const override;
  bool IsEuclideanMonotone() const override { return true; }
  std::string Name() const override { return "euclidean"; }
  double Param() const override { return max_attribute_; }
  std::unique_ptr<SimilarityFunction> Clone() const override;

  double max_attribute() const { return max_attribute_; }

  // Inverse map used by index-backed NN cursors: the Euclidean distance at
  // which similarity drops to `sim`, for a given dimensionality.
  double DistanceForSimilarity(double sim, int dim) const;

 private:
  double max_attribute_;
};

// Cosine similarity clamped to [0, 1] (attributes are non-negative, so the
// raw value is already in range; the clamp guards rounding). Zero vectors
// have similarity 0 with everything (the kernels blend the 0/0 case to 0
// before it can surface as NaN).
class CosineSimilarity final : public SimilarityFunction {
 public:
  double Compute(const double* a, const double* b, int dim) const override;
  void ComputeBatch(const double* query, const BlockedAttributes& points,
                    simd::FpMode fp, double* out) const override;
  bool IsEuclideanMonotone() const override { return false; }
  std::string Name() const override { return "cosine"; }
  std::unique_ptr<SimilarityFunction> Clone() const override;
};

// Gaussian kernel exp(-||a-b||^2 / (2 * bandwidth^2)); strictly positive,
// so every pair is matchable — useful for stress tests. The batch path
// vectorizes the distance and keeps std::exp per element, so it stays
// bit-identical to Compute at every level.
class RbfSimilarity final : public SimilarityFunction {
 public:
  explicit RbfSimilarity(double bandwidth);

  double Compute(const double* a, const double* b, int dim) const override;
  void ComputeBatch(const double* query, const BlockedAttributes& points,
                    simd::FpMode fp, double* out) const override;
  bool IsEuclideanMonotone() const override { return true; }
  std::string Name() const override { return "rbf"; }
  double Param() const override { return bandwidth_; }
  std::unique_ptr<SimilarityFunction> Clone() const override;

 private:
  double inv_two_bw_sq_;
  double bandwidth_;
};

// Inner product Σ a_j·b_j, clamped to [0, 1]. With one side one-hot
// encoded this looks up arbitrary similarity tables — how the paper's
// Table I toy example (given directly as interestingness values, not
// attribute vectors) is represented. See tests/test_util.h.
class DotSimilarity final : public SimilarityFunction {
 public:
  double Compute(const double* a, const double* b, int dim) const override;
  void ComputeBatch(const double* query, const BlockedAttributes& points,
                    simd::FpMode fp, double* out) const override;
  bool IsEuclideanMonotone() const override { return false; }
  std::string Name() const override { return "dot"; }
  std::unique_ptr<SimilarityFunction> Clone() const override;
};

// Factory by name: "euclidean" (param = T), "cosine", "rbf" (param =
// bandwidth), "dot". Returns nullptr for unknown names.
std::unique_ptr<SimilarityFunction> MakeSimilarity(const std::string& name,
                                                   double param);

}  // namespace geacc

#endif  // GEACC_CORE_SIMILARITY_H_
