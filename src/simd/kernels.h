// Batched similarity kernels over the blocked SoA attribute layout
// (DESIGN.md §15): one query vector evaluated against *blocks* of stored
// rows, with per-level (scalar / AVX2) inner reducers behind the runtime
// dispatch in simd/simd.h.
//
// ## The blocked layout contract
//
// A matrix of `rows` × `dim` doubles is mirrored as ceil(rows / 8) blocks
// of 8 rows, stored dimension-major inside each block:
//
//     blocked[(block * dim + j) * kBlockRows + r] = row(block*8 + r)[j]
//
// * kBlockRows = 8: one 64-byte cache line of f64 per (block, dimension),
//   so a kernel's inner loop streams whole lines and an AVX2 lane pair
//   (2 × 4 doubles) covers exactly one line.
// * The base pointer must be kBlockAlignment (64-byte) aligned; every
//   (block, dimension) group is then line-aligned by construction.
// * Padding: rows past `rows` in the final block are zero-filled. Kernels
//   compute full blocks — padded lanes produce well-defined garbage
//   (e.g. |q|² for squared distance) which the drivers below never copy
//   into caller-visible output. Zero (not NaN) padding keeps the padded
//   lanes finite, so they cannot raise FP exceptions or slow the block
//   down via NaN/denormal propagation.
//
// `core::AttributeMatrix::Blocked()` owns the canonical mirror;
// `BuildBlocked` below is the layout builder it (and the tests) use.
//
// ## Floating-point contract (strict vs fast)
//
// Kernels vectorize across *rows* (lanes = rows), never across the
// reduction dimension: each lane accumulates `acc = acc + f(q_j, x_j)`
// in ascending-j order — exactly the association of the per-pair scalar
// loops in core/similarity.cc — using separate IEEE mul and add. Square
// root, division, min/max and subtraction are correctly rounded per
// element in both scalar and AVX2 forms. Therefore:
//
//   FpMode::kStrict — every output is BIT-IDENTICAL to the per-pair
//   scalar path, at any dispatch level, for all finite inputs (including
//   zeros and denormals). This is the default everywhere; solver results
//   cannot depend on the dispatch level.
//
//   FpMode::kFast — the two accumulation steps may be contracted into a
//   fused multiply-add (one rounding instead of two). Outputs may differ
//   from strict in the last ulp; enumeration orders and therefore solver
//   results may differ (tie-breaks). Only opted into via
//   SolverOptions::fp_mode = "fast", and only honored on the pair-cost /
//   search-table construction paths (see DESIGN.md §15.3 for the exact
//   list); NN-cursor enumeration always runs strict.
//
// The AVX2 translation unit is compiled with -ffp-contract=off so the
// strict variants cannot be auto-contracted; fast variants use explicit
// FMA intrinsics. Strict identity additionally assumes the rest of the
// build does not enable implicit FMA contraction globally (the default
// x86-64 baseline cannot; do not build with -march=native -ffast-math).
//
// ## Non-finite inputs
//
// Kernels assume all attributes are finite. The io layer rejects
// non-finite attributes at every untrusted boundary (instance_io /
// trace_io / wire, PR 4), generators draw from bounded distributions,
// and InstanceBuilder is test-side — so matrix data reaching a kernel is
// finite by invariant. Queries are rows of the same matrices. Under this
// invariant no kernel produces NaN except transiently in the cosine
// finisher (0/0 for zero-norm rows), which is blended to the documented
// 0.0 before it escapes.
//
// ## Cost
//
// Every Batch* driver is O(rows × dim) FLOPs and reads each blocked byte
// exactly once, sequentially; scratch is O(kBlockRows) stack. Throughput
// target (and measured on AVX2): ≥3× the per-pair virtual-call path —
// from d = 20 for cosine/dot, from d = 100 for Euclidean/RBF, whose
// per-element sqrt/exp finishers dilute the gain at small d. See
// bench/micro_similarity; the strict mode's sequential per-lane
// reduction leaves add latency exposed, which bounds small-d speedups.

#ifndef GEACC_SIMD_KERNELS_H_
#define GEACC_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "simd/simd.h"

namespace geacc::simd {

// Rows per block: one cache line of doubles.
inline constexpr int kBlockRows = 8;
// Required alignment of a blocked base pointer, bytes.
inline constexpr std::size_t kBlockAlignment = 64;

enum class FpMode {
  kStrict = 0,  // bit-identical to the per-pair scalar path
  kFast = 1,    // FMA contraction permitted in the reductions
};

// Number of blocks mirroring `rows` rows.
inline int64_t NumBlocks(int64_t rows) {
  return (rows + kBlockRows - 1) / kBlockRows;
}

// Doubles in a blocked mirror of rows × dim (padded final block included).
inline int64_t BlockedSize(int64_t rows, int64_t dim) {
  return NumBlocks(rows) * dim * kBlockRows;
}

// Fills `blocked` (BlockedSize(rows, dim) doubles, kBlockAlignment-
// aligned) from row-major `data`; padded lanes are zeroed. O(rows × dim).
void BuildBlocked(const double* data, int64_t rows, int dim, double* blocked);

// ---------------------------------------------------------------------------
// Batch drivers. All write out[i] = f(query, row i) for i ∈ [0, rows) and
// require: `blocked` laid out/aligned per the contract above with at
// least NumBlocks(rows) blocks, `query` a plain (unaligned OK) dim-long
// vector, `out` writable for `rows` doubles, dim ≥ 0, rows ≥ 0. Outputs
// for padded lanes are never written. Thread-safe; no shared state.

// out[i] = Σ_j (query[j] − row_i[j])²  — the building block the
// Euclidean/RBF drivers share, exposed for index lower-bound refinement.
void BatchSquaredDistance(Level level, FpMode fp, const double* query,
                          const double* blocked, int dim, int64_t rows,
                          double* out);

// Paper Eq. (1): out[i] = clamp(1 − √d²(q,i) / (T·√dim), 0, 1);
// dim == 0 ⇒ all 1.0 (matches EuclideanSimilarity::Compute).
void BatchEuclideanSimilarity(Level level, FpMode fp, double max_attribute,
                              const double* query, const double* blocked,
                              int dim, int64_t rows, double* out);

// out[i] = clamp(q·x / √(|q|²·|x|²), 0, 1), 0 when either norm is zero.
void BatchCosineSimilarity(Level level, FpMode fp, const double* query,
                           const double* blocked, int dim, int64_t rows,
                           double* out);

// out[i] = exp(−d²(q,i) · inv_two_bw_sq). The exponential is std::exp
// per element (identical to the per-pair path at every level).
void BatchRbfSimilarity(Level level, FpMode fp, double inv_two_bw_sq,
                        const double* query, const double* blocked, int dim,
                        int64_t rows, double* out);

// out[i] = clamp(q·x, 0, 1).
void BatchDotSimilarity(Level level, FpMode fp, const double* query,
                        const double* blocked, int dim, int64_t rows,
                        double* out);

// ---------------------------------------------------------------------------
// Batched VA-file signature scan (index/va_file_index.cc).
//
// Signatures use the same blocked geometry with uint8_t cells:
//
//     sig_blocked[(block * dim + j) * kBlockRows + r] = signature(row)[j]
//
// (byte-sized, so alignment is irrelevant; padded lanes must hold a
// valid cell id in [0, cells), e.g. 0). `cell_table` is the per-query
// precomputed contribution table, dim × cells doubles:
// cell_table[j * cells + c] = squared axis-distance from query[j] to
// cell c of dimension j (0 inside the cell). Then
//
//     out[i] = Σ_j cell_table[j * cells + sig(i)[j]]
//
// which equals VaFileIndex::CellLowerBoundSq bit-for-bit (same per-cell
// arithmetic, same ascending-j accumulation; table lookups are exact).
// O(rows × dim) table loads; the AVX2 form uses vgatherdpd.
void BatchVaLowerBound(Level level, const double* cell_table, int cells,
                       const uint8_t* sig_blocked, int dim, int64_t rows,
                       double* out);

// ---------------------------------------------------------------------------
// Per-block reducer table — the level-specific functions the drivers
// loop over. Exposed so tests can pin every available level against the
// per-pair path without touching the global dispatch override.
//
// Each reducer consumes ONE block (dim × kBlockRows doubles, aligned)
// and writes kBlockRows results; `dot_norm` writes the per-lane dot
// products and squared norms (for cosine).
struct KernelTable {
  void (*squared_distance)(const double* query, const double* block, int dim,
                           double* out8);
  void (*squared_distance_fma)(const double* query, const double* block,
                               int dim, double* out8);
  void (*dot)(const double* query, const double* block, int dim,
              double* out8);
  void (*dot_fma)(const double* query, const double* block, int dim,
                  double* out8);
  void (*dot_norm)(const double* query, const double* block, int dim,
                   double* dot8, double* norm8);
  void (*dot_norm_fma)(const double* query, const double* block, int dim,
                       double* dot8, double* norm8);
  void (*va_lower_bound)(const double* cell_table, int cells,
                         const uint8_t* sig_block, int dim, double* out8);
};

// The reducers for `level`. Requesting kAvx2 when CpuSupportsAvx2() is
// false CHECK-fails (dispatch never does; only explicit callers can).
const KernelTable& GetKernels(Level level);

namespace internal {
// Level-specific reducer tables (kernels_scalar.cc / kernels_avx2.cc).
// On the scalar level the *_fma entries alias the strict reducers: kFast
// *permits* contraction, it never requires it.
const KernelTable& ScalarKernels();
// CHECK-fails when the binary was built without GEACC_HAVE_AVX2.
const KernelTable& Avx2Kernels();
}  // namespace internal

}  // namespace geacc::simd

#endif  // GEACC_SIMD_KERNELS_H_
