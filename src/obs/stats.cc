#include "obs/stats.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace geacc::obs {

StatsSnapshot StatsSnapshot::Delta(const StatsSnapshot& earlier) const {
  StatsSnapshot delta;
  for (const auto& [name, value] : counters) {
    const auto it = earlier.counters.find(name);
    const int64_t before = it == earlier.counters.end() ? 0 : it->second;
    if (value != before) delta.counters[name] = value - before;
  }
  for (const auto& [name, stat] : timers) {
    const auto it = earlier.timers.find(name);
    const TimerStat before =
        it == earlier.timers.end() ? TimerStat{} : it->second;
    if (stat.count != before.count || stat.seconds != before.seconds) {
      delta.timers[name] = {stat.seconds - before.seconds,
                            stat.count - before.count};
    }
  }
  return delta;
}

// Per-thread cell block. Cells are written only by the owning thread
// (single-writer), read by snapshotting threads with relaxed loads; the
// mutex guards only structural growth and the live/retired transitions.
// std::deque keeps existing cells stable across growth, so the owner's
// unlocked fast-path writes never race with a resize.
struct StatsRegistry::ThreadCells {
  std::mutex mu;  // guards deque growth, not cell values
  std::deque<std::atomic<int64_t>> counters;
  std::deque<std::atomic<double>> timer_seconds;
  std::deque<std::atomic<int64_t>> timer_counts;

  template <typename Deque>
  void GrowTo(Deque& cells, size_t size) {
    if (cells.size() >= size) return;
    const std::lock_guard<std::mutex> lock(mu);
    while (cells.size() < size) cells.emplace_back();
  }
};

class StatsRegistry::Impl {
 public:
  CounterId RegisterCounter(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto [it, inserted] =
        counter_ids_.emplace(name, static_cast<int>(counter_names_.size()));
    if (inserted) {
      counter_names_.push_back(name);
      retired_counters_.push_back(0);
    }
    return it->second;
  }

  TimerId RegisterTimer(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto [it, inserted] =
        timer_ids_.emplace(name, static_cast<int>(timer_names_.size()));
    if (inserted) {
      timer_names_.push_back(name);
      retired_timers_.push_back({});
    }
    return it->second;
  }

  void Add(CounterId id, int64_t delta) {
    ThreadCells& cells = Mine();
    cells.GrowTo(cells.counters, static_cast<size_t>(id) + 1);
    std::atomic<int64_t>& cell = cells.counters[id];
    // Single-writer: plain load + store compiles to unfenced moves; no
    // lock prefix on the hot path.
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  }

  void RecordTime(TimerId id, double seconds) {
    RecordTimerStat(id, {seconds, 1});
  }

  void RecordTimerStat(TimerId id, const TimerStat& stat) {
    ThreadCells& cells = Mine();
    cells.GrowTo(cells.timer_seconds, static_cast<size_t>(id) + 1);
    cells.GrowTo(cells.timer_counts, static_cast<size_t>(id) + 1);
    std::atomic<double>& total = cells.timer_seconds[id];
    total.store(total.load(std::memory_order_relaxed) + stat.seconds,
                std::memory_order_relaxed);
    std::atomic<int64_t>& count = cells.timer_counts[id];
    count.store(count.load(std::memory_order_relaxed) + stat.count,
                std::memory_order_relaxed);
  }

  StatsSnapshot Snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<int64_t> counters = retired_counters_;
    std::vector<TimerStat> timers = retired_timers_;
    for (const ThreadCells* cells : live_threads_) {
      AccumulateLocked(*cells, counters, timers);
    }
    return Render(counters, timers);
  }

  StatsSnapshot ThreadSnapshot() const {
    // Resolve the thread's cells before taking mu_: first touch registers
    // the block, which locks mu_ itself.
    ThreadCells& mine = Mine();
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<int64_t> counters(counter_names_.size(), 0);
    std::vector<TimerStat> timers(timer_names_.size(), TimerStat{});
    AccumulateLocked(mine, counters, timers);
    return Render(counters, timers);
  }

  std::vector<std::string> CounterNames() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return counter_names_;
  }

  std::vector<std::string> TimerNames() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return timer_names_;
  }

  // Folds an exiting thread's cells into the retired totals.
  void RetireThread(ThreadCells* cells) {
    const std::lock_guard<std::mutex> lock(mu_);
    const std::lock_guard<std::mutex> cell_lock(cells->mu);
    for (size_t i = 0; i < cells->counters.size(); ++i) {
      if (i < retired_counters_.size()) {
        retired_counters_[i] +=
            cells->counters[i].load(std::memory_order_relaxed);
      }
    }
    for (size_t i = 0;
         i < cells->timer_seconds.size() && i < retired_timers_.size(); ++i) {
      retired_timers_[i].seconds +=
          cells->timer_seconds[i].load(std::memory_order_relaxed);
      retired_timers_[i].count +=
          cells->timer_counts[i].load(std::memory_order_relaxed);
    }
    live_threads_.erase(
        std::find(live_threads_.begin(), live_threads_.end(), cells));
  }

 private:
  // The calling thread's cell block; registered on first touch, retired on
  // thread exit via the thread_local holder's destructor.
  ThreadCells& Mine() const {
    thread_local Holder holder(const_cast<Impl*>(this));
    return holder.cells;
  }

  struct Holder {
    explicit Holder(Impl* impl) : impl(impl) {
      const std::lock_guard<std::mutex> lock(impl->mu_);
      impl->live_threads_.push_back(&cells);
    }
    ~Holder() { impl->RetireThread(&cells); }
    Impl* impl;
    ThreadCells cells;
  };

  void AccumulateLocked(const ThreadCells& cells, std::vector<int64_t>& counters,
                        std::vector<TimerStat>& timers) const {
    const std::lock_guard<std::mutex> cell_lock(
        const_cast<std::mutex&>(cells.mu));
    for (size_t i = 0; i < cells.counters.size() && i < counters.size(); ++i) {
      counters[i] += cells.counters[i].load(std::memory_order_relaxed);
    }
    for (size_t i = 0;
         i < cells.timer_seconds.size() && i < timers.size(); ++i) {
      timers[i].seconds +=
          cells.timer_seconds[i].load(std::memory_order_relaxed);
      timers[i].count += cells.timer_counts[i].load(std::memory_order_relaxed);
    }
  }

  StatsSnapshot Render(const std::vector<int64_t>& counters,
                       const std::vector<TimerStat>& timers) const {
    StatsSnapshot snapshot;
    for (size_t i = 0; i < counters.size(); ++i) {
      if (counters[i] != 0) snapshot.counters[counter_names_[i]] = counters[i];
    }
    for (size_t i = 0; i < timers.size(); ++i) {
      if (timers[i].count != 0) snapshot.timers[timer_names_[i]] = timers[i];
    }
    return snapshot;
  }

  mutable std::mutex mu_;
  std::vector<std::string> counter_names_;
  std::unordered_map<std::string, CounterId> counter_ids_;
  std::vector<std::string> timer_names_;
  std::unordered_map<std::string, TimerId> timer_ids_;
  std::vector<ThreadCells*> live_threads_;
  std::vector<int64_t> retired_counters_;
  std::vector<TimerStat> retired_timers_;
};

StatsRegistry& StatsRegistry::Global() {
  // Leaked so instrumented code in static destructors stays safe.
  static StatsRegistry* registry = new StatsRegistry();
  return *registry;
}

StatsRegistry::Impl& StatsRegistry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

CounterId StatsRegistry::RegisterCounter(const std::string& name) {
  return impl().RegisterCounter(name);
}

TimerId StatsRegistry::RegisterTimer(const std::string& name) {
  return impl().RegisterTimer(name);
}

void StatsRegistry::Add(CounterId id, int64_t delta) {
  impl().Add(id, delta);
}

void StatsRegistry::RecordTime(TimerId id, double seconds) {
  impl().RecordTime(id, seconds);
}

void StatsRegistry::RecordTimerStat(TimerId id, const TimerStat& stat) {
  impl().RecordTimerStat(id, stat);
}

void ForwardToCallingThread(const StatsSnapshot& snapshot) {
  StatsRegistry& registry = StatsRegistry::Global();
  for (const auto& [name, value] : snapshot.counters) {
    registry.Add(registry.RegisterCounter(name), value);
  }
  for (const auto& [name, stat] : snapshot.timers) {
    registry.RecordTimerStat(registry.RegisterTimer(name), stat);
  }
}

StatsSnapshot StatsRegistry::Snapshot() const { return impl().Snapshot(); }

StatsSnapshot StatsRegistry::ThreadSnapshot() const {
  return impl().ThreadSnapshot();
}

std::vector<std::string> StatsRegistry::CounterNames() const {
  return impl().CounterNames();
}

std::vector<std::string> StatsRegistry::TimerNames() const {
  return impl().TimerNames();
}

int64_t StatsRegistry::CounterValue(const std::string& name) const {
  const StatsSnapshot snapshot = Snapshot();
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

}  // namespace geacc::obs
