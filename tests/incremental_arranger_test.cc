// Tests for the incremental repair engine (src/dyn/).

#include <gtest/gtest.h>

#include <vector>

#include "algo/online_greedy_solver.h"
#include "algo/solvers.h"
#include "dyn/dynamic_instance.h"
#include "dyn/incremental_arranger.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

using geacc::testing::MakeTableInstance;
using geacc::testing::SmallRandomInstance;

std::vector<double> RowOf(const AttributeMatrix& matrix, int row) {
  const double* source = matrix.Row(row);
  return std::vector<double>(source, source + matrix.dim());
}

// Unlimited budget, no drift fallback: pure local repair.
RepairOptions PureRepair() {
  RepairOptions options;
  options.drift_threshold = 0.0;
  return options;
}

TEST(IncrementalArranger, FullResolveBootstrapsFromTheFallback) {
  const Instance seed = geacc::testing::PaperTableIExample();
  DynamicInstance dynamic(seed);
  IncrementalArranger arranger(&dynamic);
  EXPECT_EQ(arranger.arrangement().size(), 0);
  arranger.FullResolve();
  const double greedy =
      CreateSolver("greedy")->Solve(seed).arrangement.MaxSum(seed);
  EXPECT_NEAR(arranger.max_sum(), greedy, 1e-9);
  EXPECT_EQ(arranger.Validate(), "");
}

TEST(IncrementalArranger, ArrivalsAndDeparturesStayFeasible) {
  const Instance seed = SmallRandomInstance(6, 20, 0.3, 3, 11);
  DynamicInstance dynamic(seed);
  IncrementalArranger arranger(&dynamic, PureRepair());
  arranger.FullResolve();

  // Remove a third of the users; seats refill from whoever remains.
  for (UserId u = 0; u < 20; u += 3) {
    arranger.Apply(Mutation::RemoveUser(u));
    ASSERT_EQ(arranger.Validate(), "") << "after removing user " << u;
  }
  // New arrivals use fresh slot ids.
  for (int i = 0; i < 5; ++i) {
    const Mutation arrival =
        Mutation::AddUser(RowOf(seed.user_attributes(), i), 2);
    arranger.Apply(arrival);
    ASSERT_EQ(arranger.Validate(), "");
  }
  EXPECT_NEAR(arranger.max_sum(), arranger.RecomputeMaxSum(), 1e-9);
  EXPECT_EQ(arranger.stats().mutations, 12);
}

TEST(IncrementalArranger, AddConflictEvictsTheLessInterestingSide) {
  // User 0 (capacity 2) holds both events; after they conflict, only the
  // 0.9 event survives and the 0.4 one goes to nobody (no other user).
  const Instance seed = MakeTableInstance({{0.9}, {0.4}}, {1, 1}, {2}, {});
  DynamicInstance dynamic(seed);
  IncrementalArranger arranger(&dynamic, PureRepair());
  arranger.FullResolve();
  ASSERT_EQ(arranger.arrangement().size(), 2);

  arranger.Apply(Mutation::AddConflict(0, 1));
  EXPECT_EQ(arranger.arrangement().SortedPairs(),
            (std::vector<std::pair<EventId, UserId>>{{0, 0}}));
  EXPECT_NEAR(arranger.max_sum(), 0.9, 1e-12);
  EXPECT_NEAR(arranger.drift(), 0.4, 1e-12);
  EXPECT_EQ(arranger.Validate(), "");
}

TEST(IncrementalArranger, CapacityCutEvictsLeastSimilarAndReseats) {
  // Event 0 (capacity 2) holds users 0 and 1; cutting it to 1 evicts the
  // 0.3 user, who lands on event 1 (0.2) instead.
  const Instance seed =
      MakeTableInstance({{0.8, 0.3}, {0.0, 0.2}}, {2, 1}, {1, 1}, {});
  DynamicInstance dynamic(seed);
  IncrementalArranger arranger(&dynamic, PureRepair());
  arranger.FullResolve();
  ASSERT_EQ(arranger.arrangement().size(), 2);

  arranger.Apply(Mutation::SetEventCapacity(0, 1));
  EXPECT_EQ(arranger.arrangement().SortedPairs(),
            (std::vector<std::pair<EventId, UserId>>{{0, 0}, {1, 1}}));
  EXPECT_NEAR(arranger.max_sum(), 1.0, 1e-12);
  // Displaced 0.3, won back 0.2 elsewhere: drift is the 0.1 net loss.
  EXPECT_NEAR(arranger.drift(), 0.1, 1e-12);
}

TEST(IncrementalArranger, RemoveEventReseatsItsAttendees) {
  const Instance seed =
      MakeTableInstance({{0.9}, {0.5}}, {1, 1}, {1}, {});
  DynamicInstance dynamic(seed);
  IncrementalArranger arranger(&dynamic, PureRepair());
  arranger.FullResolve();
  arranger.Apply(Mutation::RemoveEvent(0));
  EXPECT_EQ(arranger.arrangement().SortedPairs(),
            (std::vector<std::pair<EventId, UserId>>{{1, 0}}));
  // Removal losses are unavoidable, so they do not accumulate drift.
  EXPECT_NEAR(arranger.drift(), 0.0, 1e-12);
  EXPECT_EQ(arranger.Validate(), "");
}

TEST(IncrementalArranger, DriftThresholdTriggersFullResolve) {
  const Instance seed = SmallRandomInstance(8, 30, 0.0, 3, 23);
  DynamicInstance dynamic(seed);
  RepairOptions options;
  options.drift_threshold = 1e-6;  // any displaced value forces a resolve
  IncrementalArranger arranger(&dynamic, options);
  arranger.FullResolve();
  const int64_t resolves_before = arranger.stats().full_resolves;

  // Cut every event to capacity 1: plenty of displaced value.
  for (EventId v = 0; v < 8; ++v) {
    arranger.Apply(Mutation::SetEventCapacity(v, 1));
  }
  EXPECT_GT(arranger.stats().full_resolves, resolves_before);
  EXPECT_NEAR(arranger.drift(), 0.0, 1e-12);  // reset by the resolve
  EXPECT_EQ(arranger.Validate(), "");
}

TEST(IncrementalArranger, RepairBudgetBoundsCursorSteps) {
  const Instance seed = SmallRandomInstance(10, 40, 0.2, 3, 31);
  DynamicInstance dynamic(seed);
  RepairOptions options;
  options.repair_budget = 2;  // almost no repair work allowed
  options.drift_threshold = 0.0;
  IncrementalArranger arranger(&dynamic, options);
  arranger.FullResolve();

  for (UserId u = 0; u < 10; ++u) {
    arranger.Apply(Mutation::RemoveUser(u));
    // Feasibility never depends on the budget; only refill quality does.
    ASSERT_EQ(arranger.Validate(), "");
  }
  EXPECT_LE(arranger.stats().cursor_steps, 2 * 10);
  EXPECT_GT(arranger.stats().budget_exhausted, 0);
}

TEST(IncrementalArranger, ArrivalOnlyTraceMatchesOnlineArranger) {
  // The documented equivalence (algo/online_greedy_solver.h): feeding the
  // incremental engine an id-order arrival-only trace reproduces
  // OnlineArranger's arrangement exactly.
  for (const uint64_t seed : {5u, 6u, 7u}) {
    const Instance instance = SmallRandomInstance(7, 25, 0.3, 3, seed);

    DynamicInstance dynamic(instance.dim(), instance.similarity().Clone());
    IncrementalArranger arranger(&dynamic, PureRepair());
    // Stage the event side first (no users yet, so no assignments).
    for (EventId v = 0; v < instance.num_events(); ++v) {
      arranger.Apply(Mutation::AddEvent(RowOf(instance.event_attributes(), v),
                                        instance.event_capacity(v)));
    }
    for (EventId v = 0; v < instance.num_events(); ++v) {
      for (const EventId w : instance.conflicts().ConflictsOf(v)) {
        if (w > v) arranger.Apply(Mutation::AddConflict(v, w));
      }
    }
    ASSERT_EQ(arranger.arrangement().size(), 0);
    for (UserId u = 0; u < instance.num_users(); ++u) {
      arranger.Apply(Mutation::AddUser(RowOf(instance.user_attributes(), u),
                                       instance.user_capacity(u)));
    }

    OnlineArranger online(instance);
    for (UserId u = 0; u < instance.num_users(); ++u) online.ArriveUser(u);

    EXPECT_EQ(arranger.arrangement().SortedPairs(),
              online.arrangement().SortedPairs())
        << "seed " << seed;
    EXPECT_EQ(arranger.Validate(), "") << "seed " << seed;
  }
}

TEST(IncrementalArranger, OutOfBandInstanceMutationDies) {
  const Instance seed = SmallRandomInstance(3, 5, 0.0, 2, 1);
  DynamicInstance dynamic(seed);
  IncrementalArranger arranger(&dynamic);
  dynamic.SetUserCapacity(0, 2);  // behind the arranger's back
  EXPECT_DEATH(arranger.Apply(Mutation::SetUserCapacity(0, 3)), "stale");
}

TEST(IncrementalArranger, RejectsUnknownIndexAndFallback) {
  const Instance seed = SmallRandomInstance(3, 5, 0.0, 2, 2);
  EXPECT_DEATH(
      {
        DynamicInstance dynamic(seed);
        RepairOptions options;
        options.index = "nope";
        IncrementalArranger arranger(&dynamic, options);
      },
      "unknown index");
  EXPECT_DEATH(
      {
        DynamicInstance dynamic(seed);
        RepairOptions options;
        options.fallback_solver = "nope";
        IncrementalArranger arranger(&dynamic, options);
      },
      "unknown fallback_solver");
}

}  // namespace
}  // namespace geacc
