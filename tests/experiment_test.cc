// Tests for the experiment harness.

#include <gtest/gtest.h>

#include <sstream>

#include "algo/solvers.h"
#include "exp/experiment.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

SweepConfig SmallConfig() {
  SweepConfig config;
  config.title = "unit test sweep";
  config.solvers = {"greedy", "random-v"};
  config.repetitions = 2;
  config.seed = 5;
  return config;
}

std::vector<SweepPoint> SmallPoints() {
  std::vector<SweepPoint> points;
  for (const int users : {8, 16}) {
    points.push_back({std::to_string(users), [users](uint64_t seed) {
                        return geacc::testing::SmallRandomInstance(
                            4, users, 0.25, 2, seed);
                      }});
  }
  return points;
}

TEST(Experiment, RunSolverValidatesAndFillsRecord) {
  const Instance instance = geacc::testing::SmallRandomInstance(4, 8, 0.2, 2, 1);
  const auto solver = CreateSolver("greedy");
  const RunRecord record = RunSolver(*solver, instance);
  EXPECT_EQ(record.solver, "greedy");
  EXPECT_GT(record.max_sum, 0.0);
  EXPECT_GE(record.seconds, 0.0);
  EXPECT_GT(record.matched_pairs, 0);
}

TEST(Experiment, SweepShapesAndMetrics) {
  const SweepResult result = RunSweep(SmallConfig(), SmallPoints());
  EXPECT_EQ(result.x_labels, (std::vector<std::string>{"8", "16"}));
  for (const char* metric :
       {"max_sum", "seconds", "memory_mb", "matched_pairs"}) {
    ASSERT_TRUE(result.metrics.contains(metric)) << metric;
    const auto& per_solver = result.metrics.at(metric);
    ASSERT_TRUE(per_solver.contains("greedy"));
    ASSERT_TRUE(per_solver.contains("random-v"));
    EXPECT_EQ(per_solver.at("greedy").size(), 2u);
  }
  // Records: [point][solver][rep].
  ASSERT_EQ(result.records.size(), 2u);
  ASSERT_EQ(result.records[0].size(), 2u);
  ASSERT_EQ(result.records[0][0].size(), 2u);
}

TEST(Experiment, GreedyBeatsRandomOnAverage) {
  const SweepResult result = RunSweep(SmallConfig(), SmallPoints());
  const auto& max_sum = result.metrics.at("max_sum");
  for (size_t p = 0; p < result.x_labels.size(); ++p) {
    EXPECT_GE(max_sum.at("greedy")[p], max_sum.at("random-v")[p]);
  }
}

TEST(Experiment, MoreUsersNeverHurtsGreedy) {
  // MaxSum should grow (weakly) with |U| — the Fig. 3 col 2 trend.
  const SweepResult result = RunSweep(SmallConfig(), SmallPoints());
  const auto& greedy = result.metrics.at("max_sum").at("greedy");
  EXPECT_GE(greedy[1], greedy[0] * 0.9);
}

TEST(Experiment, MetricTableRendersAllPoints) {
  const SweepResult result = RunSweep(SmallConfig(), SmallPoints());
  const Table table = MetricTable(result, "max_sum", "title", "|U|");
  EXPECT_EQ(table.num_rows(), 2u);
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("greedy"), std::string::npos);
  EXPECT_NE(os.str().find("16"), std::string::npos);
}

TEST(Experiment, PrintSweepTablesEmitsThreeTables) {
  const SweepConfig config = SmallConfig();
  const SweepResult result = RunSweep(config, SmallPoints());
  std::ostringstream os;
  PrintSweepTables(config, result, "|U|", os);
  const std::string out = os.str();
  EXPECT_NE(out.find("MaxSum"), std::string::npos);
  EXPECT_NE(out.find("wall time"), std::string::npos);
  EXPECT_NE(out.find("memory"), std::string::npos);
}

TEST(ExperimentDeathTest, UnknownSolverNameAborts) {
  SweepConfig config = SmallConfig();
  config.solvers = {"not-a-solver"};
  EXPECT_DEATH(RunSweep(config, SmallPoints()), "unknown solver");
}

TEST(Experiment, ParallelSweepMatchesSerialExactly) {
  SweepConfig serial = SmallConfig();
  serial.repetitions = 3;
  SweepConfig parallel = serial;
  parallel.threads = 4;
  const SweepResult a = RunSweep(serial, SmallPoints());
  const SweepResult b = RunSweep(parallel, SmallPoints());
  ASSERT_EQ(a.x_labels, b.x_labels);
  for (const char* metric : {"max_sum", "matched_pairs"}) {
    const auto& ma = a.metrics.at(metric);
    const auto& mb = b.metrics.at(metric);
    for (const auto& [solver, values] : ma) {
      ASSERT_EQ(values, mb.at(solver)) << metric << " " << solver;
    }
  }
}

TEST(Experiment, RepetitionsUseDistinctInstances) {
  // With 2 reps the mean must generally differ from a single run's value;
  // verify the harness passed different seeds by checking raw records.
  const SweepResult result = RunSweep(SmallConfig(), SmallPoints());
  const auto& reps = result.records[0][0];
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_NE(reps[0].max_sum, reps[1].max_sum);
}

}  // namespace
}  // namespace geacc
