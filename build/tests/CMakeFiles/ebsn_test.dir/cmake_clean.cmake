file(REMOVE_RECURSE
  "CMakeFiles/ebsn_test.dir/ebsn_test.cc.o"
  "CMakeFiles/ebsn_test.dir/ebsn_test.cc.o.d"
  "ebsn_test"
  "ebsn_test.pdb"
  "ebsn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebsn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
