// Tests for workload similarity statistics.

#include <gtest/gtest.h>

#include "gen/ebsn.h"
#include "gen/instance_stats.h"
#include "gen/synthetic.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

TEST(InstanceStats, HandComputedTable) {
  const Instance instance = geacc::testing::MakeTableInstance(
      {{0.2, 0.8}, {0.0, 0.6}}, {1, 1}, {1, 1}, {});
  const SimilarityStats stats = ComputeSimilarityStats(instance);
  EXPECT_EQ(stats.pair_count, 4);
  EXPECT_EQ(stats.zero_pairs, 1);
  EXPECT_NEAR(stats.mean, (0.2 + 0.8 + 0.0 + 0.6) / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, 0.8);
  EXPECT_DOUBLE_EQ(stats.p50, 0.2);  // sorted {0, .2, .6, .8}, index 1
  // Per-user best: max(0.2, 0) = 0.2 and max(0.8, 0.6) = 0.8.
  EXPECT_NEAR(stats.mean_user_best, 0.5, 1e-12);
  // Per-event best: 0.8 and 0.6.
  EXPECT_NEAR(stats.mean_event_best, 0.7, 1e-12);
  // Histogram: one entry each in bins for 0.0, 0.2, 0.6, 0.8.
  EXPECT_EQ(stats.histogram[0], 1);   // 0.0
  EXPECT_EQ(stats.histogram[4], 1);   // 0.2
  EXPECT_EQ(stats.histogram[12], 1);  // 0.6
  EXPECT_EQ(stats.histogram[16], 1);  // 0.8
}

TEST(InstanceStats, EmptyInstance) {
  const Instance instance = geacc::testing::MakeTableInstance({}, {}, {}, {});
  const SimilarityStats stats = ComputeSimilarityStats(instance);
  EXPECT_EQ(stats.pair_count, 0);
}

TEST(InstanceStats, HistogramTotalsMatchPairCount) {
  SyntheticConfig config;
  config.num_events = 20;
  config.num_users = 50;
  config.seed = 3;
  const SimilarityStats stats =
      ComputeSimilarityStats(GenerateSynthetic(config));
  int64_t total = 0;
  for (const int64_t count : stats.histogram) total += count;
  EXPECT_EQ(total, stats.pair_count);
  EXPECT_LE(stats.p25, stats.p50);
  EXPECT_LE(stats.p50, stats.p75);
  EXPECT_LE(stats.p75, stats.p95);
  EXPECT_GE(stats.mean_user_best, stats.mean);  // max dominates mean
}

TEST(InstanceStats, DimensionalitySparsifiesSimilarity) {
  // The Fig. 3 col 3 mechanism, measured directly: higher d → lower mean
  // similarity under Eq. (1).
  SyntheticConfig low, high;
  low.num_events = high.num_events = 15;
  low.num_users = high.num_users = 60;
  low.seed = high.seed = 5;
  low.dim = 2;
  high.dim = 20;
  const double mean_low =
      ComputeSimilarityStats(GenerateSynthetic(low)).mean;
  const double mean_high =
      ComputeSimilarityStats(GenerateSynthetic(high)).mean;
  EXPECT_GT(mean_low, mean_high);
}

TEST(InstanceStats, EbsnGeometryDiffersFromUniform) {
  // The simulator's tag-simplex geometry is measurably different from a
  // same-shape uniform cube: normalized profiles sit close together
  // (higher mean similarity, tighter spread), and the community structure
  // still lifts each user's best match clearly above the mean — the
  // geometry DESIGN.md §4 claims.
  EbsnConfig ebsn_config = EbsnCityPreset("auckland");
  ebsn_config.seed = 7;
  const SimilarityStats ebsn =
      ComputeSimilarityStats(GenerateEbsn(ebsn_config));

  SyntheticConfig uniform_config;
  uniform_config.num_events = 37;
  uniform_config.num_users = 569;
  uniform_config.dim = 20;
  uniform_config.max_attribute = 1.0;
  uniform_config.event_attribute = DistributionSpec::Uniform(0.0, 1.0);
  uniform_config.user_attribute = DistributionSpec::Uniform(0.0, 1.0);
  uniform_config.seed = 7;
  const SimilarityStats uniform =
      ComputeSimilarityStats(GenerateSynthetic(uniform_config));

  EXPECT_GT(ebsn.mean, uniform.mean + 0.1);     // simplex concentration
  EXPECT_LT(ebsn.stddev, uniform.stddev);       // tighter spread
  EXPECT_GT(ebsn.mean_user_best, ebsn.mean + 0.02);  // community lift
}

TEST(InstanceStats, ToStringRendersHistogram) {
  SyntheticConfig config;
  config.num_events = 5;
  config.num_users = 10;
  const std::string text =
      ComputeSimilarityStats(GenerateSynthetic(config)).ToString();
  EXPECT_NE(text.find("pairs=50"), std::string::npos);
  EXPECT_NE(text.find("[0.00,0.05)"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

}  // namespace
}  // namespace geacc
