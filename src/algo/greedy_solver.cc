#include "algo/greedy_solver.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "index/idistance_paged.h"
#include "index/knn_index.h"
#include "obs/stats.h"
#include "util/memory.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace geacc {
namespace {

// Heap entry ordered by (similarity desc, event asc, user asc) so pops are
// deterministic under similarity ties.
struct PairEntry {
  double similarity;
  EventId v;
  UserId u;

  bool operator<(const PairEntry& other) const {
    if (similarity != other.similarity) return similarity < other.similarity;
    if (v != other.v) return v > other.v;
    return u > other.u;
  }
};

// Mutable solve-state shared by the helper lambdas.
struct GreedyState {
  std::vector<int> event_capacity;
  std::vector<int> user_capacity;
  std::vector<std::unique_ptr<NnCursor>> event_cursors;  // over users
  std::vector<std::unique_ptr<NnCursor>> user_cursors;   // over events
  std::priority_queue<PairEntry> heap;
  std::unordered_set<uint64_t> pushed;  // pairs ever pushed into the heap
};

}  // namespace

SolveResult GreedySolver::Solve(const Instance& instance) const {
  WallTimer timer;
  SolverStats stats;
  const int num_events = instance.num_events();
  const int num_users = instance.num_users();
  Arrangement matching(num_events, num_users);
  if (num_events == 0 || num_users == 0) {
    stats.wall_seconds = timer.Seconds();
    return {std::move(matching), stats};
  }

  StorageOptions storage;
  storage.budget_bytes = options_.storage_budget_bytes;
  storage.dir = options_.storage_dir;
  const std::unique_ptr<KnnIndex> user_index =
      MakeIndex(options_.index, instance.user_attributes(),
                instance.similarity(), storage);
  const std::unique_ptr<KnnIndex> event_index =
      MakeIndex(options_.index, instance.event_attributes(),
                instance.similarity(), storage);
  GEACC_CHECK(user_index != nullptr && event_index != nullptr)
      << "unknown index '" << options_.index << "'";

  GreedyState state;
  state.event_capacity.resize(num_events);
  state.user_capacity.resize(num_users);
  for (EventId v = 0; v < num_events; ++v) {
    state.event_capacity[v] = instance.event_capacity(v);
  }
  for (UserId u = 0; u < num_users; ++u) {
    state.user_capacity[u] = instance.user_capacity(u);
  }
  // Cursor creation and NN-frontier seeding fan out over the pool; the
  // iteration loop below is inherently sequential (each pop changes the
  // constraint state the next pop is judged against). Cursors occupy
  // disjoint slots and CreateCursor/Next touch no shared mutable index
  // state, so concurrent creation and advancement are race-free.
  ThreadPool pool(ResolveThreadCount(options_.threads));
  state.event_cursors.resize(num_events);
  state.user_cursors.resize(num_users);
  pool.ParallelFor(0, num_events, [&](int /*chunk*/, int64_t chunk_begin,
                                      int64_t chunk_end) {
    for (EventId v = static_cast<EventId>(chunk_begin);
         v < static_cast<EventId>(chunk_end); ++v) {
      state.event_cursors[v] =
          user_index->CreateCursor(instance.event_attributes().Row(v));
    }
  });
  pool.ParallelFor(0, num_users, [&](int /*chunk*/, int64_t chunk_begin,
                                     int64_t chunk_end) {
    for (UserId u = static_cast<UserId>(chunk_begin);
         u < static_cast<UserId>(chunk_end); ++u) {
      state.user_cursors[u] =
          event_index->CreateCursor(instance.user_attributes().Row(u));
    }
  });

  const ConflictGraph& conflicts = instance.conflicts();
  // True iff v conflicts with an event already matched to u.
  auto conflicts_with_matched = [&](EventId v, UserId u) {
    for (const EventId w : matching.EventsOf(u)) {
      if (conflicts.AreConflicting(v, w)) return true;
    }
    return false;
  };

  // Candidates a cursor skipped because they were already pushed or had
  // become infeasible (lazy re-insert work, batched and flushed below).
  int64_t cursor_skips = 0;
  int64_t matches = 0;

  auto push_pair = [&](EventId v, UserId u, double similarity) {
    if (!state.pushed.insert(PairKey(v, u)).second) return;  // already in H
    state.heap.push({similarity, v, u});
    ++stats.heap_pushes;
  };

  // Advances an event's cursor to its next feasible unvisited user and
  // pushes the pair. Feasibility at skip time is permanent (capacities
  // only decrease, conflicts only accumulate), so consumed candidates are
  // never needed again. `check_constraints` is false during initialization
  // (Algorithm 2 lines 2–8 push plain first-NNs).
  auto advance_event = [&](EventId v, bool check_constraints) {
    while (true) {
      const auto next = state.event_cursors[v]->Next();
      if (!next) return;                     // v is a finished node
      if (next->similarity <= 0.0) return;   // all later NNs also ≤ 0
      const UserId u = next->id;
      if (state.pushed.contains(PairKey(v, u))) {
        ++cursor_skips;  // visited
        continue;
      }
      if (check_constraints) {
        if (state.user_capacity[u] <= 0 || conflicts_with_matched(v, u)) {
          ++cursor_skips;
          continue;
        }
      }
      push_pair(v, u, next->similarity);
      return;
    }
  };

  auto advance_user = [&](UserId u, bool check_constraints) {
    while (true) {
      const auto next = state.user_cursors[u]->Next();
      if (!next) return;
      if (next->similarity <= 0.0) return;
      const EventId v = next->id;
      if (state.pushed.contains(PairKey(v, u))) {
        ++cursor_skips;
        continue;
      }
      if (check_constraints) {
        if (state.event_capacity[v] <= 0 || conflicts_with_matched(v, u)) {
          ++cursor_skips;
          continue;
        }
      }
      push_pair(v, u, next->similarity);
      return;
    }
  };

  {
    // Initialization (lines 1–9): each node contributes its first NN.
    // Serially this is advance_event(v, false) for every v then
    // advance_user(u, false) for every u; both phases parallelize exactly:
    //
    //  * Event phase: cursor v yields only (v, ·) pairs and only event v
    //    ever pushes (v, ·), so the pushed-set check can never fire —
    //    every event independently consumes exactly one cursor entry.
    //  * User phase: cursor u yields only (·, u) pairs, and the only
    //    (·, u) entries in `pushed` are the event-phase ones — pairs
    //    pushed by earlier users carry a different user id. Skip
    //    decisions therefore depend only on the frozen event-phase set,
    //    which the parallel region reads without mutation.
    //
    // Candidates fold on the caller in id order, reproducing the serial
    // heap push sequence bit for bit; skip counts are integer sums.
    GEACC_PHASE_TIMER("greedy.init");
    struct Seed {
      EventId v;
      UserId u;
      double similarity;
    };
    ParallelMap<std::vector<Seed>>(
        pool, 0, num_events,
        [&](int64_t chunk_begin, int64_t chunk_end) {
          std::vector<Seed> seeds;
          for (EventId v = static_cast<EventId>(chunk_begin);
               v < static_cast<EventId>(chunk_end); ++v) {
            const auto next = state.event_cursors[v]->Next();
            if (next && next->similarity > 0.0) {
              seeds.push_back({v, next->id, next->similarity});
            }
          }
          return seeds;
        },
        [&](const std::vector<Seed>& seeds) {
          for (const Seed& seed : seeds) {
            push_pair(seed.v, seed.u, seed.similarity);
          }
        });
    struct UserSeeds {
      std::vector<Seed> seeds;
      int64_t skips = 0;
    };
    ParallelMap<UserSeeds>(
        pool, 0, num_users,
        [&](int64_t chunk_begin, int64_t chunk_end) {
          UserSeeds out;
          for (UserId u = static_cast<UserId>(chunk_begin);
               u < static_cast<UserId>(chunk_end); ++u) {
            while (true) {
              const auto next = state.user_cursors[u]->Next();
              if (!next) break;
              if (next->similarity <= 0.0) break;
              if (state.pushed.contains(PairKey(next->id, u))) {
                ++out.skips;  // visited via the event phase
                continue;
              }
              out.seeds.push_back({next->id, u, next->similarity});
              break;
            }
          }
          return out;
        },
        [&](const UserSeeds& out) {
          cursor_skips += out.skips;
          for (const Seed& seed : out.seeds) {
            push_pair(seed.v, seed.u, seed.similarity);
          }
        });
  }

  {
    // Iteration (lines 11–23).
    GEACC_PHASE_TIMER("greedy.iterate");
    while (!state.heap.empty()) {
      const PairEntry top = state.heap.top();
      state.heap.pop();
      ++stats.heap_pops;
      const EventId v = top.v;
      const UserId u = top.u;
      if (state.event_capacity[v] > 0 && state.user_capacity[u] > 0 &&
          !conflicts_with_matched(v, u)) {
        matching.Add(v, u);
        ++matches;
        --state.event_capacity[v];
        --state.user_capacity[u];
      }
      if (state.event_capacity[v] > 0) advance_event(v, true);
      if (state.user_capacity[u] > 0) advance_user(u, true);
    }
  }
  GEACC_STATS_ADD("greedy.heap_pushes", stats.heap_pushes);
  GEACC_STATS_ADD("greedy.heap_pops", stats.heap_pops);
  GEACC_STATS_ADD("greedy.cursor_skips", cursor_skips);
  GEACC_STATS_ADD("greedy.matches", matches);

  stats.logical_peak_bytes =
      VectorBytes(state.event_capacity) + VectorBytes(state.user_capacity) +
      state.pushed.size() * (sizeof(uint64_t) + sizeof(void*)) +
      static_cast<uint64_t>(stats.heap_pushes) * sizeof(PairEntry) +
      user_index->ByteEstimate() + event_index->ByteEstimate() +
      (static_cast<uint64_t>(num_events) + num_users) * 1600 +  // cursors
      matching.ByteEstimate();
  stats.wall_seconds = timer.Seconds();
  return {std::move(matching), stats};
}

}  // namespace geacc
