// Tests for the arrangement-quality metrics.

#include <gtest/gtest.h>

#include "algo/solvers.h"
#include "exp/metrics.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

using geacc::testing::MakeTableInstance;

TEST(Metrics, EmptyArrangementAllZero) {
  const Instance instance =
      MakeTableInstance({{0.5, 0.5}}, {2}, {1, 1}, {});
  const Arrangement empty(1, 2);
  const ArrangementMetrics metrics = ComputeMetrics(instance, empty);
  EXPECT_EQ(metrics.matched_pairs, 0);
  EXPECT_DOUBLE_EQ(metrics.max_sum, 0.0);
  EXPECT_DOUBLE_EQ(metrics.seat_utilization, 0.0);
  EXPECT_DOUBLE_EQ(metrics.user_coverage, 0.0);
  EXPECT_DOUBLE_EQ(metrics.jain_fairness, 0.0);
}

TEST(Metrics, HandComputedValues) {
  // Events: capacities 2 and 1; users: capacities 1, 1, 1.
  const Instance instance = MakeTableInstance(
      {{0.8, 0.6, 0.4}, {0.5, 0.3, 0.2}}, {2, 1}, {1, 1, 1}, {});
  Arrangement arrangement(2, 3);
  arrangement.Add(0, 0);  // 0.8
  arrangement.Add(0, 1);  // 0.6
  const ArrangementMetrics metrics = ComputeMetrics(instance, arrangement);
  EXPECT_EQ(metrics.matched_pairs, 2);
  EXPECT_NEAR(metrics.max_sum, 1.4, 1e-12);
  EXPECT_NEAR(metrics.mean_matched_similarity, 0.7, 1e-12);
  EXPECT_NEAR(metrics.seat_utilization, 2.0 / 3.0, 1e-12);  // 2 of 3 seats
  EXPECT_NEAR(metrics.events_with_attendees, 0.5, 1e-12);   // event 1 empty
  EXPECT_NEAR(metrics.mean_event_fill, 0.5, 1e-12);  // (2/2 + 0/1) / 2
  EXPECT_NEAR(metrics.user_coverage, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(metrics.mean_user_load, 2.0 / 3.0, 1e-12);
  // Jain over interests {0.8, 0.6, 0}: (1.4)² / (3 · (0.64+0.36)) = 0.6533…
  EXPECT_NEAR(metrics.jain_fairness, 1.96 / 3.0, 1e-12);
}

TEST(Metrics, PerfectFairnessWhenEqualInterest) {
  const Instance instance =
      MakeTableInstance({{0.5, 0.5}}, {2}, {1, 1}, {});
  Arrangement arrangement(1, 2);
  arrangement.Add(0, 0);
  arrangement.Add(0, 1);
  const ArrangementMetrics metrics = ComputeMetrics(instance, arrangement);
  EXPECT_NEAR(metrics.jain_fairness, 1.0, 1e-12);
  EXPECT_NEAR(metrics.user_coverage, 1.0, 1e-12);
  EXPECT_NEAR(metrics.seat_utilization, 1.0, 1e-12);
}

TEST(Metrics, SolverOutputsProduceSaneMetrics) {
  const Instance instance = geacc::testing::SmallRandomInstance(
      6, 20, 0.3, 3, 77);
  for (const char* name : {"greedy", "mincostflow", "random-v"}) {
    const auto result = CreateSolver(name)->Solve(instance);
    const ArrangementMetrics metrics =
        ComputeMetrics(instance, result.arrangement);
    EXPECT_GE(metrics.seat_utilization, 0.0) << name;
    EXPECT_LE(metrics.seat_utilization, 1.0) << name;
    EXPECT_GE(metrics.user_coverage, 0.0) << name;
    EXPECT_LE(metrics.user_coverage, 1.0) << name;
    EXPECT_GE(metrics.jain_fairness, 0.0) << name;
    EXPECT_LE(metrics.jain_fairness, 1.0 + 1e-12) << name;
    EXPECT_GE(metrics.mean_matched_similarity, 0.0) << name;
    EXPECT_LE(metrics.mean_matched_similarity, 1.0) << name;
    EXPECT_NE(metrics.DebugString().find("MaxSum"), std::string::npos);
  }
}

TEST(Metrics, GreedyCoversMoreValueThanRandom) {
  const Instance instance = geacc::testing::SmallRandomInstance(
      8, 40, 0.25, 2, 13);
  const auto greedy = CreateSolver("greedy")->Solve(instance);
  const auto random = CreateSolver("random-v")->Solve(instance);
  const auto greedy_metrics = ComputeMetrics(instance, greedy.arrangement);
  const auto random_metrics = ComputeMetrics(instance, random.arrangement);
  EXPECT_GT(greedy_metrics.max_sum, random_metrics.max_sum);
  EXPECT_GE(greedy_metrics.mean_matched_similarity,
            random_metrics.mean_matched_similarity);
}

TEST(MetricsDeathTest, SizeMismatchDies) {
  const Instance instance =
      MakeTableInstance({{0.5, 0.5}}, {2}, {1, 1}, {});
  const Arrangement wrong(2, 2);
  EXPECT_DEATH(ComputeMetrics(instance, wrong), "GEACC_CHECK failed");
}

TEST(LatencyRecorder, MeanAndPercentiles) {
  LatencyRecorder recorder;
  EXPECT_EQ(recorder.count(), 0);
  EXPECT_EQ(recorder.mean(), 0.0);
  EXPECT_EQ(recorder.Percentile(50), 0.0);
  // Out-of-order inserts; nearest-rank over {1, 2, ..., 10} ms.
  for (const double ms : {5., 1., 9., 3., 7., 10., 2., 8., 4., 6.}) {
    recorder.Record(ms * 1e-3);
  }
  EXPECT_EQ(recorder.count(), 10);
  EXPECT_NEAR(recorder.mean(), 5.5e-3, 1e-12);
  EXPECT_NEAR(recorder.Percentile(0), 1e-3, 1e-12);
  EXPECT_NEAR(recorder.Percentile(50), 5e-3, 1e-12);
  EXPECT_NEAR(recorder.Percentile(90), 9e-3, 1e-12);
  EXPECT_NEAR(recorder.Percentile(100), 10e-3, 1e-12);
  recorder.Record(0.5e-3);  // stays correct after a post-query insert
  EXPECT_NEAR(recorder.Percentile(0), 0.5e-3, 1e-12);
}

TEST(ChurnMetrics, DerivedRatios) {
  ChurnMetrics churn;
  EXPECT_EQ(churn.ReassignmentsPerMutation(), 0.0);
  EXPECT_EQ(churn.OracleRatio(), 1.0);  // nothing to arrange either way
  EXPECT_EQ(churn.SpeedupVsFullSolve(), 0.0);
  churn.mutations = 200;
  churn.reassignments = 500;
  churn.final_max_sum = 95.0;
  churn.oracle_max_sum = 100.0;
  churn.mean_repair_seconds = 1e-4;
  churn.mean_full_solve_seconds = 1e-2;
  EXPECT_NEAR(churn.ReassignmentsPerMutation(), 2.5, 1e-12);
  EXPECT_NEAR(churn.OracleRatio(), 0.95, 1e-12);
  EXPECT_NEAR(churn.SpeedupVsFullSolve(), 100.0, 1e-9);
  EXPECT_NE(churn.DebugString().find("ratio=0.95"), std::string::npos);
}

}  // namespace
}  // namespace geacc
