// geacc_solve — command-line solver front end.
//
// Reads a GEACC instance from a file (or generates a synthetic one),
// solves it with any registered algorithm, prints paper-style statistics,
// and optionally writes/validates the arrangement:
//
//   # generate, solve, save
//   ./build/examples/geacc_solve --generate --events 100 --users 1000 ..
//       --solver greedy --out /tmp/plan.txt --save_instance /tmp/inst.txt
//
//   # reload and verify the plan later
//   ./build/examples/geacc_solve --instance /tmp/inst.txt ..
//       --check /tmp/plan.txt

#include <cstdio>
#include <optional>
#include <string>

#include "algo/solvers.h"
#include "core/instance.h"
#include "gen/instance_stats.h"
#include "gen/synthetic.h"
#include "io/instance_io.h"
#include "io/tag_import.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  std::string instance_path, solver_name = "greedy", out_path,
              save_instance_path, check_path;
  std::string events_csv, users_csv, conflicts_csv;
  int top_k_tags = 20;
  bool generate = false;
  bool stats = false;
  int events = 100, users = 1000, dim = 20;
  double conflict_density = 0.25;
  int64_t seed = 42;

  geacc::FlagSet flags;
  flags.AddString("instance", &instance_path, "instance file to load");
  flags.AddString("events_csv", &events_csv,
                  "tagged events CSV ('capacity,tagA;tagB') — use with "
                  "--users_csv for the paper's Section V tag pipeline");
  flags.AddString("users_csv", &users_csv, "tagged users CSV");
  flags.AddString("conflicts_csv", &conflicts_csv,
                  "conflict pairs CSV (optional, 'event_a,event_b')");
  flags.AddInt("top_k_tags", &top_k_tags,
               "attribute dimensions kept from the tag vocabulary");
  flags.AddBool("generate", &generate, "generate a synthetic instance");
  flags.AddInt("events", &events, "synthetic |V|");
  flags.AddInt("users", &users, "synthetic |U|");
  flags.AddInt("dim", &dim, "synthetic attribute dimension");
  flags.AddDouble("rho", &conflict_density, "synthetic conflict density");
  flags.AddInt("seed", &seed, "synthetic generator seed");
  flags.AddString("solver", &solver_name,
                  "greedy|greedy-sortall|online-greedy|mincostflow|prune|"
                  "exhaustive|bruteforce|random-v|random-u");
  flags.AddString("out", &out_path, "write the arrangement to this file");
  flags.AddString("save_instance", &save_instance_path,
                  "also save the instance to this file");
  flags.AddString("check", &check_path,
                  "validate an existing arrangement file instead of solving");
  flags.AddBool("stats", &stats,
                "print the similarity-distribution characterization");
  flags.Parse(argc, argv);

  std::optional<geacc::Instance> instance;
  std::string error;
  if (!instance_path.empty()) {
    instance = geacc::ReadInstanceFromFile(instance_path, &error);
    if (!instance) {
      std::fprintf(stderr, "failed to read %s: %s\n", instance_path.c_str(),
                   error.c_str());
      return 1;
    }
  } else if (!events_csv.empty() || !users_csv.empty()) {
    if (events_csv.empty() || users_csv.empty()) {
      std::fprintf(stderr, "--events_csv and --users_csv go together\n");
      return 1;
    }
    instance = geacc::LoadTaggedInstance(events_csv, users_csv,
                                         conflicts_csv, top_k_tags, &error);
    if (!instance) {
      std::fprintf(stderr, "failed to load tagged data: %s\n",
                   error.c_str());
      return 1;
    }
  } else if (generate) {
    geacc::SyntheticConfig config;
    config.num_events = events;
    config.num_users = users;
    config.dim = dim;
    config.conflict_density = conflict_density;
    config.seed = static_cast<uint64_t>(seed);
    instance = geacc::GenerateSynthetic(config);
  } else {
    std::fprintf(stderr, "need --instance FILE or --generate (see --help)\n");
    return 1;
  }
  std::printf("%s\n", instance->DebugString().c_str());
  if (stats) {
    std::printf("%s\n",
                geacc::ComputeSimilarityStats(*instance).ToString().c_str());
  }

  if (!save_instance_path.empty()) {
    if (!geacc::WriteInstanceToFile(*instance, save_instance_path)) {
      std::fprintf(stderr, "cannot write %s\n", save_instance_path.c_str());
      return 1;
    }
    std::printf("instance saved to %s\n", save_instance_path.c_str());
  }

  if (!check_path.empty()) {
    const auto arrangement =
        geacc::ReadArrangementFromFile(check_path, *instance, &error);
    if (!arrangement) {
      std::fprintf(stderr, "failed to read %s: %s\n", check_path.c_str(),
                   error.c_str());
      return 1;
    }
    const std::string violation = arrangement->Validate(*instance);
    if (!violation.empty()) {
      std::printf("INFEASIBLE: %s\n", violation.c_str());
      return 2;
    }
    std::printf("feasible; MaxSum = %.4f over %lld pairs\n",
                arrangement->MaxSum(*instance),
                (long long)arrangement->size());
    return 0;
  }

  const auto solver = geacc::CreateSolver(solver_name);
  if (solver == nullptr) {
    std::fprintf(stderr, "unknown solver '%s'\n", solver_name.c_str());
    return 1;
  }
  const geacc::SolveResult result = solver->Solve(*instance);
  const std::string violation = result.arrangement.Validate(*instance);
  if (!violation.empty()) {
    std::fprintf(stderr, "solver bug: %s\n", violation.c_str());
    return 2;
  }
  std::printf("solver       %s\n", solver->Name().c_str());
  std::printf("MaxSum       %.4f\n", result.arrangement.MaxSum(*instance));
  std::printf("pairs        %lld\n", (long long)result.arrangement.size());
  std::printf("wall time    %.4fs\n", result.stats.wall_seconds);
  std::printf("solver mem   %.2f MB\n",
              result.stats.logical_peak_bytes / (1024.0 * 1024.0));
  if (result.stats.search_invocations > 0) {
    std::printf("search nodes %lld (%lld complete, %lld pruned%s)\n",
                (long long)result.stats.search_invocations,
                (long long)result.stats.complete_searches,
                (long long)result.stats.prune_events,
                result.stats.search_truncated ? ", TRUNCATED" : "");
  }
  if (!out_path.empty()) {
    if (!geacc::WriteArrangementToFile(result.arrangement, out_path)) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("arrangement saved to %s\n", out_path.c_str());
  }
  return 0;
}
