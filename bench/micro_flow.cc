// Microbenchmarks: min-cost-flow substrate on GEACC-shaped bipartite
// networks (the cost driver of MinCostFlow-GEACC).

#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include "flow/graph.h"
#include "flow/min_cost_flow.h"
#include "util/rng.h"

namespace geacc {
namespace {

struct Network {
  FlowGraph graph;
  int source;
  int sink;
};

Network MakeBipartite(int events, int users, uint64_t seed) {
  Rng rng(seed);
  Network net{FlowGraph(events + users + 2), 0, events + users + 1};
  for (int v = 0; v < events; ++v) {
    net.graph.AddArc(net.source, 1 + v, rng.UniformInt(1, 25), 0.0);
  }
  for (int v = 0; v < events; ++v) {
    for (int u = 0; u < users; ++u) {
      net.graph.AddArc(1 + v, 1 + events + u, 1, rng.NextDouble());
    }
  }
  for (int u = 0; u < users; ++u) {
    net.graph.AddArc(1 + events + u, net.sink, rng.UniformInt(1, 4), 0.0);
  }
  return net;
}

void BM_BuildNetwork(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  const int users = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Network net = MakeBipartite(events, users, 7);
    benchmark::DoNotOptimize(net.graph.num_arcs());
  }
}
BENCHMARK(BM_BuildNetwork)->Args({20, 200})->Args({50, 500});

void BM_RunToMaxFlow(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  const int users = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Network net = MakeBipartite(events, users, 7);
    SuccessiveShortestPaths sspa(&net.graph, net.source, net.sink);
    benchmark::DoNotOptimize(sspa.RunToMaxFlow());
  }
}
BENCHMARK(BM_RunToMaxFlow)->Args({10, 100})->Args({20, 200})->Args({50, 500});

// Unit-by-unit augmentation (what MinCostFlow-GEACC does) vs bottleneck.
void BM_UnitAugmentation(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  const int users = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Network net = MakeBipartite(events, users, 7);
    SuccessiveShortestPaths sspa(&net.graph, net.source, net.sink);
    while (sspa.Augment(1) == 1) {
    }
    benchmark::DoNotOptimize(sspa.total_cost());
  }
}
BENCHMARK(BM_UnitAugmentation)->Args({10, 100})->Args({20, 200});

void BM_ProfitableSweep(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  const int users = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Network net = MakeBipartite(events, users, 7);
    SuccessiveShortestPaths sspa(&net.graph, net.source, net.sink);
    while (sspa.AugmentIfCheaper(1.0) == 1) {
    }
    benchmark::DoNotOptimize(sspa.total_cost());
  }
}
BENCHMARK(BM_ProfitableSweep)->Args({10, 100})->Args({20, 200});

}  // namespace
}  // namespace geacc

GEACC_MICRO_MAIN("micro_flow")
