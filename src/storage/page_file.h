// Page manager: a single file of fixed-size, checksummed pages under a
// versioned superblock (DESIGN.md §14).
//
// Layout (page_size chosen at Create, persisted in the superblock):
//
//   offset 0            superblock slot A
//   offset page_size    superblock slot B
//   offset 2·page_size  data page 0
//   ...                 data page i at offset (2 + i)·page_size
//
// Commit protocol: page writes go to their final location immediately
// (there is no WAL at this layer), but they are not *reachable* until
// Commit() publishes a new superblock. The two slots alternate by
// generation parity: Commit() fsyncs the data, writes the superblock with
// generation+1 into the slot the previous generation did NOT use, and
// fsyncs again. Open() picks the valid slot with the highest generation,
// so a crash anywhere leaves the previous committed state readable —
// unless the interrupted writer had already overwritten committed pages
// in place (the checkpoint store's dirty-page diffing does exactly that),
// which the superblock's whole-state checksum catches one layer up
// (svc/paged_checkpoint.h). Either way the reader sees "valid previous
// state" or "detectably torn", never a silent mix.
//
// Thread-safety: none. PageFile is single-owner; the buffer pool
// serializes access for multi-threaded readers.

#ifndef GEACC_STORAGE_PAGE_FILE_H_
#define GEACC_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/page.h"

namespace geacc::storage {

inline constexpr uint32_t kSuperblockMagic = 0x47435342u;  // "GCSB"
inline constexpr uint32_t kPageFileVersion = 1;

class PageFile {
 public:
  // Client-visible superblock payload, published atomically by Commit().
  struct Meta {
    uint32_t data_pages = 0;       // committed logical page count
    uint64_t state_bytes = 0;      // client use (checkpoint byte length)
    uint64_t state_checksum = 0;   // client use (whole-state FNV-1a)
    int64_t applied_seq = 0;       // client use (WAL mutations covered)
    uint64_t user[6] = {0, 0, 0, 0, 0, 0};  // client use (tree roots etc.)
  };

  // Creates/truncates `path` with the given page size and commits an
  // empty generation-1 superblock. Returns nullptr with *error set on
  // failure (bad page size, IO error).
  static std::unique_ptr<PageFile> Create(const std::string& path,
                                          uint32_t page_size,
                                          std::string* error);

  // Opens an existing page file, validating the superblocks and picking
  // the newest valid generation. Returns nullptr with *error on a
  // missing/truncated file or when no superblock slot validates.
  static std::unique_ptr<PageFile> Open(const std::string& path,
                                        std::string* error);

  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  const std::string& path() const { return path_; }
  uint32_t page_size() const { return page_size_; }
  // Bytes of client payload per page.
  uint32_t payload_capacity() const {
    return page_size_ - static_cast<uint32_t>(sizeof(PageHeader));
  }
  uint64_t generation() const { return generation_; }
  const Meta& meta() const { return meta_; }

  // Pages allocated this session (>= meta().data_pages). Allocation is
  // purely logical — the file grows when the page is first written — and
  // becomes durable only when a Commit() publishes a data_pages covering
  // it; un-committed allocations simply vanish on crash.
  uint32_t allocated_pages() const { return allocated_pages_; }
  PageId Allocate() { return allocated_pages_++; }

  // Writes one full page (header + payload + zero padding) in place.
  // `payload_bytes` must fit payload_capacity(); `id` must be allocated.
  bool WritePage(PageId id, uint16_t type, const void* payload,
                 uint32_t payload_bytes, std::string* error);

  // Reads and checksum-verifies page `id` into `payload`, which must hold
  // payload_capacity() bytes. Fails on IO errors, id mismatch (the file
  // was spliced), or checksum mismatch (torn/corrupt page).
  bool ReadPage(PageId id, void* payload, uint16_t* type,
                uint32_t* payload_bytes, std::string* error);

  // Header-only read of the stored checksum — the cheap side of the
  // dirty-page diff (compare against PageChecksum() of candidate bytes).
  // Fails only on IO errors; a garbage checksum is returned as-is.
  bool ReadPageChecksum(PageId id, uint64_t* checksum, std::string* error);

  // Durability point: fsync data writes, publish `meta` under
  // generation+1 in the alternate superblock slot, fsync again.
  bool Commit(const Meta& meta, std::string* error);

 private:
  PageFile(std::string path, int fd, uint32_t page_size);

  uint64_t PageOffset(PageId id) const {
    return (2ull + id) * page_size_;
  }
  bool SyncFd(std::string* error);

  std::string path_;
  int fd_ = -1;
  uint32_t page_size_ = 0;
  uint64_t generation_ = 0;
  uint32_t allocated_pages_ = 0;
  Meta meta_;
};

}  // namespace geacc::storage

#endif  // GEACC_STORAGE_PAGE_FILE_H_
