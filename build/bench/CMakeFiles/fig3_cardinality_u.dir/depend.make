# Empty dependencies file for fig3_cardinality_u.
# This may be replaced when dependencies are built.
