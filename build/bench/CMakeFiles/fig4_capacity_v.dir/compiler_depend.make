# Empty compiler generated dependencies file for fig4_capacity_v.
# This may be replaced when dependencies are built.
