# Empty dependencies file for tag_import_test.
# This may be replaced when dependencies are built.
