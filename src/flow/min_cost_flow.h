// Successive Shortest Path min-cost flow (SSPA).
//
// The paper's MinCostFlow-GEACC (Algorithm 1) needs the min-cost flow of
// *every* amount Δ = 1..Δmax. SSPA delivers exactly that: after the k-th
// unit augmentation along a cheapest residual path, the current flow is a
// minimum-cost flow of amount k (the classical SSPA invariant), so one
// incremental run yields all Δ without re-solving.
//
// Shortest paths use Dijkstra with Johnson potentials. Networks with
// negative arc costs are bootstrapped with one Bellman–Ford pass; the GEACC
// reduction has costs 1 - sim ∈ [0, 1], so the bootstrap is normally
// skipped.

#ifndef GEACC_FLOW_MIN_COST_FLOW_H_
#define GEACC_FLOW_MIN_COST_FLOW_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "flow/graph.h"

namespace geacc {

class SuccessiveShortestPaths {
 public:
  // The graph must outlive the solver. Source and sink must differ.
  SuccessiveShortestPaths(FlowGraph* graph, int source, int sink);

  // Pushes up to `max_units` along one cheapest source→sink residual path.
  // Returns the units actually pushed (0 if the sink is unreachable, i.e.
  // the maximum flow has been reached) — callers pass 1 to enumerate
  // per-unit matchings, or a large value to run at full bottleneck speed.
  int64_t Augment(int64_t max_units);

  // Pushes one unit along the cheapest path only if the path's real cost is
  // strictly below `cost_limit`; otherwise leaves the flow unchanged and
  // returns 0. Used by MinCostFlow-GEACC: unit costs are non-decreasing
  // across augmentations, so the first non-profitable path ends the sweep
  // with the flow resting exactly at the best Δ.
  int64_t AugmentIfCheaper(double cost_limit);

  // Runs to maximum flow. Returns the total units pushed by this call.
  int64_t RunToMaxFlow();

  int64_t total_flow() const { return total_flow_; }
  double total_cost() const { return total_cost_; }

  uint64_t ByteEstimate() const;

 private:
  // Cheapest-path search over reduced costs; fills parent_arc_ and updates
  // potentials. Returns false if the sink is unreachable.
  bool FindPath();
  void BellmanFordPotentials();

  FlowGraph* graph_;
  int source_;
  int sink_;
  int64_t total_flow_ = 0;
  double total_cost_ = 0.0;

  std::vector<double> potential_;
  std::vector<double> distance_;
  std::vector<int> parent_arc_;
  std::vector<bool> settled_;
};

}  // namespace geacc

#endif  // GEACC_FLOW_MIN_COST_FLOW_H_
