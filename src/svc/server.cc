#include "svc/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "io/trace_io.h"
#include "obs/stats.h"
#include "util/string_util.h"

namespace geacc::svc {
namespace {

// read()/send() with EINTR and short-transfer handling. send() so we can
// pass MSG_NOSIGNAL — a peer that closed mid-reply must not SIGPIPE the
// server.
bool ReadFull(int fd, void* data, size_t size) {
  auto* bytes = static_cast<char*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = read(fd, bytes + done, size - done);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

bool WriteFull(int fd, const void* data, size_t size) {
  const auto* bytes = static_cast<const char*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = send(fd, bytes + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

bool SendResponse(int fd, const WireResponse& response) {
  const std::string frame = EncodeResponseFrame(response);
  return WriteFull(fd, frame.data(), frame.size());
}

WireResponse ErrorResponse(std::string message) {
  WireResponse response;
  response.type = MsgType::kError;
  response.message = std::move(message);
  return response;
}

}  // namespace

WireServer::WireServer(Dispatcher dispatcher)
    : WireServer(std::move(dispatcher), Options()) {}

WireServer::WireServer(Dispatcher dispatcher, Options options)
    : dispatcher_(std::move(dispatcher)), options_(options) {}

WireServer::~WireServer() { Stop(); }

bool WireServer::Start(int port, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return fail(StrFormat("bind 127.0.0.1:%d", port));
  }
  if (listen(listen_fd_, SOMAXCONN) < 0) return fail("listen");

  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) <
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void WireServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    for (const int fd : connection_fds_) {
      if (fd >= 0) shutdown(fd, SHUT_RDWR);
    }
  }
  if (listen_fd_ >= 0) {
    shutdown(listen_fd_, SHUT_RDWR);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& thread : connection_threads_) {
    if (thread.joinable()) thread.join();
  }
}

void WireServer::AcceptLoop() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or fatal — either way we're done
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::thread finished;  // joined outside the lock
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        close(fd);
        return;
      }
      // Reclaim a finished slot (its ConnectionLoop set the fd to -1) so
      // a long-lived server doesn't accrete one dead thread per client.
      size_t slot = connection_fds_.size();
      for (size_t i = 0; i < connection_fds_.size(); ++i) {
        if (connection_fds_[i] < 0) {
          slot = i;
          break;
        }
      }
      int live = 0;
      for (const int conn_fd : connection_fds_) {
        if (conn_fd >= 0) ++live;
      }
      if (options_.max_connections > 0 && live >= options_.max_connections) {
        // Full house: refuse with a clean, parseable frame instead of
        // spawning an unbounded thread. The client sees kOverloaded and
        // retries or sheds, exactly as it would for queue backpressure.
        GEACC_STATS_ADD("svc.net.overloaded_conns", 1);
        WireResponse overloaded;
        overloaded.type = MsgType::kOverloaded;
        SendResponse(fd, overloaded);
        close(fd);
        continue;
      }
      if (slot < connection_fds_.size()) {
        finished = std::move(connection_threads_[slot]);
        connection_fds_[slot] = fd;
        connection_threads_[slot] =
            std::thread([this, slot, fd] { ConnectionLoop(slot, fd); });
      } else {
        connection_fds_.push_back(fd);
        connection_threads_.emplace_back(
            [this, slot, fd] { ConnectionLoop(slot, fd); });
      }
    }
    if (finished.joinable()) finished.join();
  }
}

void WireServer::ConnectionLoop(size_t slot, int fd) {
  for (;;) {
    uint8_t prefix[4];
    if (!ReadFull(fd, prefix, sizeof(prefix))) break;
    uint32_t length = 0;
    for (int i = 0; i < 4; ++i) {
      length |= static_cast<uint32_t>(prefix[i]) << (8 * i);
    }
    if (length < 2 || length > kMaxFrameBytes) {
      GEACC_STATS_ADD("svc.net.protocol_errors", 1);
      SendResponse(fd, ErrorResponse(StrFormat(
                           "frame length %u out of range",
                           static_cast<unsigned>(length))));
      break;
    }
    std::string body(length, '\0');
    if (!ReadFull(fd, body.data(), body.size())) break;
    if (!HandleFrame(body, fd)) break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  close(fd);
  connection_fds_[slot] = -1;
}

bool WireServer::HandleFrame(const std::string& frame_body, int fd) {
  GEACC_STATS_ADD("svc.net.requests", 1);
  WireRequest request;
  std::string decode_error;
  if (!DecodeRequest(reinterpret_cast<const uint8_t*>(frame_body.data()),
                     frame_body.size(), &request, &decode_error)) {
    GEACC_STATS_ADD("svc.net.protocol_errors", 1);
    SendResponse(fd, ErrorResponse("bad frame: " + decode_error));
    return false;  // framing is broken — do not trust the byte stream
  }
  return SendResponse(fd, dispatcher_(request));
}

ServiceServer::ServiceServer(ArrangementService* service,
                             WireServer::Options options)
    : service_(service),
      server_([this](const WireRequest& request) { return Dispatch(request); },
              options) {}

WireResponse ServiceServer::Dispatch(const WireRequest& request) {
  WireResponse response;
  switch (request.type) {
    case MsgType::kPing:
      response.type = MsgType::kPong;
      return response;
    case MsgType::kGetAssignments: {
      if (service_->GetAssignments(request.id, &response.ids) !=
          SvcStatus::kOk) {
        return ErrorResponse(StrFormat("user id %d out of range",
                                       request.id));
      }
      response.type = MsgType::kIdList;
      return response;
    }
    case MsgType::kGetAttendees: {
      if (service_->GetAttendees(request.id, &response.ids) !=
          SvcStatus::kOk) {
        return ErrorResponse(StrFormat("event id %d out of range",
                                       request.id));
      }
      response.type = MsgType::kIdList;
      return response;
    }
    case MsgType::kTopK: {
      if (service_->TopKEvents(request.id, request.k, &response.scored) !=
          SvcStatus::kOk) {
        return ErrorResponse(StrFormat("bad top-k query (user %d, k %d)",
                                       request.id, request.k));
      }
      response.type = MsgType::kScoredList;
      return response;
    }
    case MsgType::kStats:
      response.type = MsgType::kStatsReply;
      response.stats = service_->Stats();
      return response;
    case MsgType::kMutate: {
      std::string parse_error;
      const std::shared_ptr<const ServiceSnapshot> snap =
          service_->snapshot();
      std::optional<Mutation> mutation =
          ParseMutationLine(request.payload, snap->dim(), &parse_error);
      if (!mutation) {
        return ErrorResponse("bad mutation: " + parse_error);
      }
      // Best-effort admission check against the current snapshot, so a
      // wire client learns about obvious garbage (dead ids, bad arity)
      // synchronously — the writer still re-validates at apply time.
      const std::string problem = ValidateMutation(*snap, *mutation);
      if (!problem.empty()) {
        return ErrorResponse("bad mutation: " + problem);
      }
      const SubmitResult result = service_->Submit(std::move(*mutation));
      switch (result.status) {
        case SvcStatus::kOk:
          response.type = MsgType::kMutateAck;
          response.ticket = result.ticket;
          return response;
        case SvcStatus::kOverloaded:
          response.type = MsgType::kOverloaded;
          return response;
        default:
          return ErrorResponse(std::string("submit failed: ") +
                               SvcStatusName(result.status));
      }
    }
    case MsgType::kCandidates: {
      if (service_->Candidates(request.id, request.k, &response.candidates) !=
          SvcStatus::kOk) {
        return ErrorResponse(StrFormat(
            "bad candidates query (first %d, count %d)", request.id,
            request.k));
      }
      response.type = MsgType::kCandidateList;
      return response;
    }
    case MsgType::kInstallArrangement: {
      std::vector<std::pair<EventId, UserId>> pairs;
      pairs.reserve(request.pairs.size());
      for (const auto& [event, user] : request.pairs) {
        pairs.emplace_back(event, user);
      }
      const SubmitResult result =
          service_->SubmitInstall(std::move(pairs), request.max_sum_bits);
      switch (result.status) {
        case SvcStatus::kOk:
          response.type = MsgType::kMutateAck;
          response.ticket = result.ticket;
          return response;
        case SvcStatus::kOverloaded:
          response.type = MsgType::kOverloaded;
          return response;
        default:
          return ErrorResponse(std::string("install failed: ") +
                               SvcStatusName(result.status));
      }
    }
    case MsgType::kShardStats:
      return ErrorResponse("shard stats: not a coordinator");
    default:
      return ErrorResponse("unexpected message type");
  }
}

}  // namespace geacc::svc
