// Crash-consistency tests for the paged checkpoint store (DESIGN.md §14):
// exact state round-trips, dirty-page write economy, and — the point —
// graceful degradation on torn pages, torn whole-state writes, and
// truncated files. Every corruption must surface as a soft Read failure
// (→ full WAL replay), never a wrong state.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/similarity.h"
#include "dyn/dynamic_instance.h"
#include "dyn/incremental_arranger.h"
#include "dyn/mutation.h"
#include "svc/paged_checkpoint.h"

namespace geacc::svc {
namespace {

std::string TempPath(const std::string& tag) {
  static int counter = 0;
  return testing::TempDir() + "/geacc_crash_test_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++) +
         ".ckpt";
}

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// A live writer state with tombstones, conflicts, and a non-empty
// arrangement — every field class the encoding must carry.
ServiceState MakeState(int users, int events, uint64_t seed) {
  DynamicInstance instance(2, MakeSimilarity("euclidean", 100.0));
  for (int v = 0; v < events; ++v) {
    instance.AddEvent({static_cast<double>((seed + v) % 17),
                       static_cast<double>((3 * v) % 11)},
                      1 + v % 3);
  }
  for (int u = 0; u < users; ++u) {
    instance.AddUser({static_cast<double>((seed + 2 * u) % 13),
                      static_cast<double>((5 * u) % 7)},
                     1 + u % 2);
  }
  if (events >= 3) instance.AddConflict(0, 2);
  if (events >= 2) instance.AddConflict(0, 1);

  IncrementalArranger arranger(&instance);
  arranger.FullResolve();
  // A tombstone, so SlotState must preserve inactive rows verbatim.
  if (users >= 2) arranger.Apply(Mutation::RemoveUser(1));

  ServiceState state;
  state.similarity_name = instance.similarity().Name();
  state.similarity_param = instance.similarity().Param();
  state.slot = instance.ExportSlotState();
  state.arranger = arranger.ExportState();
  return state;
}

void ExpectStatesEqual(const ServiceState& a, const ServiceState& b) {
  EXPECT_EQ(a.similarity_name, b.similarity_name);
  EXPECT_EQ(a.similarity_param, b.similarity_param);
  EXPECT_EQ(a.slot.dim, b.slot.dim);
  EXPECT_EQ(a.slot.epoch, b.slot.epoch);
  EXPECT_EQ(a.slot.event_capacities, b.slot.event_capacities);
  EXPECT_EQ(a.slot.user_capacities, b.slot.user_capacities);
  EXPECT_EQ(a.slot.event_active, b.slot.event_active);
  EXPECT_EQ(a.slot.user_active, b.slot.user_active);
  EXPECT_EQ(a.slot.conflicts, b.slot.conflicts);
  ASSERT_EQ(a.slot.event_attributes.rows(), b.slot.event_attributes.rows());
  for (int v = 0; v < a.slot.event_attributes.rows(); ++v) {
    for (int d = 0; d < a.slot.dim; ++d) {
      EXPECT_EQ(a.slot.event_attributes.At(v, d),
                b.slot.event_attributes.At(v, d));
    }
  }
  ASSERT_EQ(a.slot.user_attributes.rows(), b.slot.user_attributes.rows());
  for (int u = 0; u < a.slot.user_attributes.rows(); ++u) {
    for (int d = 0; d < a.slot.dim; ++d) {
      EXPECT_EQ(a.slot.user_attributes.At(u, d),
                b.slot.user_attributes.At(u, d));
    }
  }
  EXPECT_EQ(a.arranger.user_events, b.arranger.user_events);
  EXPECT_EQ(a.arranger.event_users, b.arranger.event_users);
  EXPECT_EQ(a.arranger.max_sum_bits, b.arranger.max_sum_bits);
  EXPECT_EQ(a.arranger.drift_bits, b.arranger.drift_bits);
}

TEST(ServiceStateEncoding, RoundTripsExactly) {
  const ServiceState state = MakeState(8, 5, 3);
  const std::string encoded = EncodeServiceState(state);
  ServiceState decoded;
  std::string error;
  ASSERT_TRUE(DecodeServiceState(encoded, &decoded, &error)) << error;
  ExpectStatesEqual(state, decoded);
  // Text round trip is a fixed point.
  EXPECT_EQ(EncodeServiceState(decoded), encoded);
}

TEST(ServiceStateEncoding, RejectsMalformedText) {
  const ServiceState state = MakeState(4, 3, 1);
  const std::string encoded = EncodeServiceState(state);
  ServiceState decoded;
  std::string error;
  EXPECT_FALSE(DecodeServiceState("", &decoded, &error));
  EXPECT_FALSE(DecodeServiceState("not a checkpoint", &decoded, &error));
  // Truncated mid-record.
  EXPECT_FALSE(DecodeServiceState(encoded.substr(0, encoded.size() / 2),
                                  &decoded, &error));
  // Missing the end marker.
  std::string no_end = encoded.substr(0, encoded.rfind("end"));
  EXPECT_FALSE(DecodeServiceState(no_end, &decoded, &error));
}

TEST(PagedCheckpointStore, WriteReadRoundTrip) {
  ScopedFile file(TempPath("roundtrip"));
  std::string error;
  auto store = PagedCheckpointStore::Open(file.path(), 512, &error);
  ASSERT_NE(store, nullptr) << error;

  // An empty store reads back nothing (soft).
  ServiceState decoded;
  int64_t applied = -1;
  EXPECT_FALSE(store->Read(&decoded, &applied, &error));

  const ServiceState state = MakeState(10, 6, 7);
  PagedCheckpointStore::WriteStats stats;
  ASSERT_TRUE(store->Write(state, 25, &stats, &error)) << error;
  EXPECT_GT(stats.pages_total, 0);
  EXPECT_EQ(stats.pages_written, stats.pages_total);  // first write: all

  ASSERT_TRUE(store->Read(&decoded, &applied, &error)) << error;
  EXPECT_EQ(applied, 25);
  ExpectStatesEqual(state, decoded);

  // Reopen from disk and read again.
  store.reset();
  store = PagedCheckpointStore::Open(file.path(), 512, &error);
  ASSERT_NE(store, nullptr) << error;
  ASSERT_TRUE(store->Read(&decoded, &applied, &error)) << error;
  EXPECT_EQ(applied, 25);
  ExpectStatesEqual(state, decoded);
}

TEST(PagedCheckpointStore, DirtyPageDiffingSkipsUnchangedPages) {
  ScopedFile file(TempPath("diff"));
  std::string error;
  auto store = PagedCheckpointStore::Open(file.path(), 512, &error);
  ASSERT_NE(store, nullptr) << error;

  ServiceState state = MakeState(200, 30, 9);
  PagedCheckpointStore::WriteStats first;
  ASSERT_TRUE(store->Write(state, 1, &first, &error)) << error;
  ASSERT_GT(first.pages_total, 3) << "state too small to exercise diffing";

  // Identical state again: nothing should hit the disk.
  PagedCheckpointStore::WriteStats second;
  ASSERT_TRUE(store->Write(state, 1, &second, &error)) << error;
  EXPECT_EQ(second.pages_total, first.pages_total);
  EXPECT_EQ(second.pages_written, 0);

  // A small edit near the end (arranger bits) touches few pages.
  state.arranger.drift_bits ^= 0x1;
  PagedCheckpointStore::WriteStats third;
  ASSERT_TRUE(store->Write(state, 2, &third, &error)) << error;
  EXPECT_GT(third.pages_written, 0);
  EXPECT_LT(third.pages_written, third.pages_total / 2)
      << "a one-field edit rewrote most of the checkpoint";

  ServiceState decoded;
  int64_t applied = -1;
  ASSERT_TRUE(store->Read(&decoded, &applied, &error)) << error;
  EXPECT_EQ(applied, 2);
  ExpectStatesEqual(state, decoded);
}

TEST(PagedCheckpointStore, TornPageFailsSoft) {
  ScopedFile file(TempPath("torn_page"));
  std::string error;
  auto store = PagedCheckpointStore::Open(file.path(), 512, &error);
  ASSERT_NE(store, nullptr) << error;
  const ServiceState state = MakeState(20, 8, 11);
  PagedCheckpointStore::WriteStats stats;
  ASSERT_TRUE(store->Write(state, 5, &stats, &error)) << error;
  ASSERT_GT(stats.pages_total, 1);
  store.reset();

  // Corrupt a byte in the middle of data page 1.
  {
    std::fstream f(file.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(3 * 512 + 100);
    char byte;
    f.seekg(3 * 512 + 100);
    f.read(&byte, 1);
    byte = static_cast<char>(~byte);
    f.seekp(3 * 512 + 100);
    f.write(&byte, 1);
  }
  store = PagedCheckpointStore::Open(file.path(), 512, &error);
  ASSERT_NE(store, nullptr) << error;  // open succeeds — superblock intact
  ServiceState decoded;
  int64_t applied = -1;
  EXPECT_FALSE(store->Read(&decoded, &applied, &error));
  EXPECT_FALSE(error.empty());
}

TEST(PagedCheckpointStore, FrankensteinStateFailsWholeStateChecksum) {
  // Simulate a crash mid-Write that left a mix of generations: write
  // state A, then state B, then splice one of A's pages back in with a
  // *valid page checksum* (the page itself is well-formed, the state is
  // not). Only the whole-state checksum can catch this.
  ScopedFile file(TempPath("franken"));
  std::string error;
  auto store = PagedCheckpointStore::Open(file.path(), 512, &error);
  ASSERT_NE(store, nullptr) << error;
  const ServiceState state_a = MakeState(30, 10, 13);
  PagedCheckpointStore::WriteStats stats;
  ASSERT_TRUE(store->Write(state_a, 1, &stats, &error)) << error;
  ASSERT_GT(stats.pages_total, 2);

  // Capture page 0's on-disk bytes under state A.
  std::vector<char> page_a(512);
  {
    std::ifstream f(file.path(), std::ios::binary);
    f.seekg(2 * 512);
    f.read(page_a.data(), 512);
  }

  const ServiceState state_b = MakeState(30, 10, 14);  // different content
  ASSERT_TRUE(store->Write(state_b, 2, &stats, &error)) << error;
  store.reset();

  {
    std::fstream f(file.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(2 * 512);
    f.write(page_a.data(), 512);
  }
  store = PagedCheckpointStore::Open(file.path(), 512, &error);
  ASSERT_NE(store, nullptr) << error;
  ServiceState decoded;
  int64_t applied = -1;
  EXPECT_FALSE(store->Read(&decoded, &applied, &error));
  EXPECT_NE(error.find("torn"), std::string::npos) << error;
}

TEST(PagedCheckpointStore, TruncatedFileIsRecreatedOnOpen) {
  ScopedFile file(TempPath("trunc"));
  std::string error;
  auto store = PagedCheckpointStore::Open(file.path(), 512, &error);
  ASSERT_NE(store, nullptr) << error;
  const ServiceState state = MakeState(10, 5, 17);
  PagedCheckpointStore::WriteStats stats;
  ASSERT_TRUE(store->Write(state, 3, &stats, &error)) << error;
  store.reset();

  // Truncate to one superblock's worth of bytes.
  {
    std::ofstream f(file.path(),
                    std::ios::binary | std::ios::in | std::ios::trunc);
  }
  store = PagedCheckpointStore::Open(file.path(), 512, &error);
  ASSERT_NE(store, nullptr) << error;  // recreated, not fatal
  ServiceState decoded;
  int64_t applied = -1;
  EXPECT_FALSE(store->Read(&decoded, &applied, &error));  // and empty
  // The recreated store accepts new checkpoints.
  ASSERT_TRUE(store->Write(state, 4, &stats, &error)) << error;
  ASSERT_TRUE(store->Read(&decoded, &applied, &error)) << error;
  EXPECT_EQ(applied, 4);
}

TEST(PagedCheckpointStore, PageSizeChangeIsRecreatedOnOpen) {
  ScopedFile file(TempPath("resize"));
  std::string error;
  auto store = PagedCheckpointStore::Open(file.path(), 512, &error);
  ASSERT_NE(store, nullptr) << error;
  const ServiceState state = MakeState(6, 4, 19);
  PagedCheckpointStore::WriteStats stats;
  ASSERT_TRUE(store->Write(state, 8, &stats, &error)) << error;
  store.reset();

  // Same path, different page size: the old contents are unusable at this
  // size, so Open recreates rather than failing.
  store = PagedCheckpointStore::Open(file.path(), 1024, &error);
  ASSERT_NE(store, nullptr) << error;
  ServiceState decoded;
  int64_t applied = -1;
  EXPECT_FALSE(store->Read(&decoded, &applied, &error));
}

// Restoring an exported state into fresh objects continues bit-identically
// — the property service recovery is built on.
TEST(StateRestore, InstanceAndArrangerContinueBitIdentically) {
  DynamicInstance original(2, MakeSimilarity("euclidean", 100.0));
  for (int v = 0; v < 6; ++v) {
    original.AddEvent({v * 3.0, v * 1.5}, 2);
  }
  for (int u = 0; u < 15; ++u) {
    original.AddUser({u * 1.0, (u % 5) * 2.0}, 1 + u % 2);
  }
  original.AddConflict(1, 4);
  IncrementalArranger arranger(&original);
  arranger.FullResolve();
  arranger.Apply(Mutation::RemoveEvent(2));
  arranger.Apply(Mutation::AddUser({7.5, 3.25}, 2));

  // Snapshot, then rebuild from the snapshot.
  const auto slot = original.ExportSlotState();
  const auto arranger_state = arranger.ExportState();
  std::string error;
  auto restored_instance = DynamicInstance::FromSlotState(
      slot, MakeSimilarity("euclidean", 100.0), &error);
  ASSERT_TRUE(restored_instance.has_value()) << error;
  IncrementalArranger restored(&*restored_instance);
  ASSERT_EQ(restored.RestoreState(arranger_state), "");
  EXPECT_EQ(restored.max_sum(), arranger.max_sum());
  EXPECT_EQ(restored.arrangement().SortedPairs(),
            arranger.arrangement().SortedPairs());
  EXPECT_EQ(restored.Validate(), "");

  // Drive both with the same suffix — they must stay in lockstep.
  const std::vector<Mutation> suffix = {
      Mutation::AddConflict(0, 3),
      Mutation::SetUserCapacity(4, 2),
      Mutation::AddEvent({2.25, 9.0}, 3),
      Mutation::RemoveUser(7),
  };
  for (const Mutation& mutation : suffix) {
    arranger.Apply(mutation);
    restored.Apply(mutation);
    ASSERT_EQ(restored.arrangement().SortedPairs(),
              arranger.arrangement().SortedPairs())
        << mutation.DebugString();
    ASSERT_EQ(restored.max_sum(), arranger.max_sum());
    ASSERT_EQ(restored.drift(), arranger.drift());
  }
}

TEST(StateRestore, CorruptArrangerStateRollsBackToEmpty) {
  DynamicInstance instance(2, MakeSimilarity("euclidean", 100.0));
  instance.AddEvent({1.0, 2.0}, 2);
  instance.AddUser({1.5, 2.5}, 1);
  IncrementalArranger arranger(&instance);
  arranger.FullResolve();

  auto state = arranger.ExportState();
  ASSERT_FALSE(state.user_events.empty());
  state.user_events[0].push_back(99);  // out-of-range event
  IncrementalArranger victim(&instance);
  EXPECT_NE(victim.RestoreState(state), "");
  EXPECT_EQ(victim.arrangement().size(), 0);
}

}  // namespace
}  // namespace geacc::svc
