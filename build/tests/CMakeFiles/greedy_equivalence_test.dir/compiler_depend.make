# Empty compiler generated dependencies file for greedy_equivalence_test.
# This may be replaced when dependencies are built.
