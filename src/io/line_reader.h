// Internal parsing plumbing shared by the io/ readers (instance_io,
// trace_io): a tokenizing line reader with line-number diagnostics and the
// small helpers the line-oriented formats are parsed with. Not part of the
// public API.

#ifndef GEACC_IO_LINE_READER_H_
#define GEACC_IO_LINE_READER_H_

#include <istream>
#include <sstream>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace geacc::io_internal {

// Tokenizing line reader that tracks line numbers for diagnostics.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  // Next non-empty, non-comment ('#') line split on whitespace; empty
  // vector at EOF.
  std::vector<std::string> NextTokens() {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_number_;
      const std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      std::istringstream tokens{std::string(trimmed)};
      std::vector<std::string> result;
      std::string token;
      while (tokens >> token) result.push_back(token);
      return result;
    }
    return {};
  }

  int line_number() const { return line_number_; }

 private:
  std::istream& is_;
  int line_number_ = 0;
};

inline std::string At(const LineReader& reader, const std::string& what) {
  return StrFormat("line %d: %s", reader.line_number(), what.c_str());
}

inline bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// Parses "<keyword> <count>"; returns -1 on mismatch.
inline int64_t ParseCountLine(const std::vector<std::string>& tokens,
                              const std::string& keyword) {
  if (tokens.size() != 2 || tokens[0] != keyword) return -1;
  const auto count = ParseInt(tokens[1]);
  if (!count || *count < 0) return -1;
  return *count;
}

}  // namespace geacc::io_internal

#endif  // GEACC_IO_LINE_READER_H_
