// Arrangement quality metrics beyond MaxSum.
//
// The paper's introduction motivates GEACC with two-sided satisfaction:
// events want full rosters, users want interesting (and many) events.
// MaxSum is the optimization objective; these diagnostics quantify how an
// arrangement distributes that value — seat utilization on the event side,
// coverage and fairness (Jain's index) on the user side. Used by the
// example applications and the real-dataset bench.

#ifndef GEACC_EXP_METRICS_H_
#define GEACC_EXP_METRICS_H_

#include <string>

#include "core/arrangement.h"
#include "core/instance.h"

namespace geacc {

struct ArrangementMetrics {
  double max_sum = 0.0;
  int64_t matched_pairs = 0;

  // Event side.
  double seat_utilization = 0.0;    // Σ loads / Σ c_v
  double events_with_attendees = 0.0;  // fraction of events with ≥1 user
  double mean_event_fill = 0.0;     // mean load_v / c_v

  // User side.
  double user_coverage = 0.0;       // fraction of users with ≥1 event
  double mean_user_load = 0.0;      // mean events per user
  double mean_matched_similarity = 0.0;  // MaxSum / matched pairs

  // Jain's fairness index over per-user attained interest
  // (Σx)² / (n·Σx²) ∈ [1/n, 1]; 1 = perfectly even. 0 when no user is
  // matched.
  double jain_fairness = 0.0;

  std::string DebugString() const;
};

// Computes all metrics; `arrangement` must be sized for `instance`.
ArrangementMetrics ComputeMetrics(const Instance& instance,
                                  const Arrangement& arrangement);

}  // namespace geacc

#endif  // GEACC_EXP_METRICS_H_
