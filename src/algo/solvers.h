// Solver registry: string names → solver instances.
//
// Names: "greedy", "greedy-sortall" (materialize-and-sort ablation with
// identical output), "online-greedy" (user-at-a-time streaming baseline),
// "mincostflow", "prune", "exhaustive" (Prune-GEACC with the bound
// disabled), "bruteforce", "random-v", "random-u".

#ifndef GEACC_ALGO_SOLVERS_H_
#define GEACC_ALGO_SOLVERS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/solver.h"

namespace geacc {

// Creates a solver by name, or nullptr for unknown names. For
// "exhaustive", options.enable_pruning is forced off.
std::unique_ptr<Solver> CreateSolver(const std::string& name,
                                     SolverOptions options = {});

// All registry names, in presentation order.
std::vector<std::string> SolverNames();

}  // namespace geacc

#endif  // GEACC_ALGO_SOLVERS_H_
