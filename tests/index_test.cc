// Unit and property tests for the k-NN index substrate. All four backends
// (linear scan, kd-tree, VA-File, iDistance) must agree exactly: same
// similarity values, same deterministic tie-break, every point enumerated
// exactly once in non-increasing similarity order.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "core/attributes.h"
#include "core/similarity.h"
#include "index/idistance_index.h"
#include "index/kd_tree_index.h"
#include "index/knn_index.h"
#include "index/linear_scan_index.h"
#include "index/va_file_index.h"
#include "util/rng.h"

namespace geacc {
namespace {

constexpr const char* kAllIndexes[] = {"linear", "kdtree", "vafile",
                                       "idistance"};

AttributeMatrix RandomPoints(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  AttributeMatrix points(n, dim);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      points.Set(i, j, rng.UniformReal(0.0, 100.0));
    }
  }
  return points;
}

TEST(MakeIndex, FactoryNamesAndFallback) {
  const AttributeMatrix points = RandomPoints(10, 2, 1);
  const EuclideanSimilarity euclid(100.0);
  const CosineSimilarity cosine;
  for (const char* name : kAllIndexes) {
    ASSERT_NE(MakeIndex(name, points, euclid), nullptr) << name;
    EXPECT_EQ(MakeIndex(name, points, euclid)->Name(), name);
    // Non-metric similarity: distance-ordered indexes degrade to linear.
    EXPECT_EQ(MakeIndex(name, points, cosine)->Name(), "linear") << name;
  }
  EXPECT_EQ(MakeIndex("nope", points, euclid), nullptr);
}

TEST(DistanceOrderedIndexes, RejectNonMonotoneSimilarity) {
  const AttributeMatrix points = RandomPoints(4, 2, 2);
  const CosineSimilarity cosine;
  EXPECT_DEATH(KdTreeIndex(points, cosine), "Euclidean-monotone");
  EXPECT_DEATH(VaFileIndex(points, cosine), "Euclidean-monotone");
  EXPECT_DEATH(IDistanceIndex(points, cosine), "Euclidean-monotone");
}

TEST(Index, EmptyIndexYieldsNothing) {
  const AttributeMatrix points(0, 2);
  const EuclideanSimilarity sim(100.0);
  const double query[] = {1.0, 2.0};
  for (const char* name : kAllIndexes) {
    const auto index = MakeIndex(name, points, sim);
    EXPECT_TRUE(index->Query(query, 3).empty()) << name;
    EXPECT_FALSE(index->CreateCursor(query)->Next().has_value()) << name;
  }
}

TEST(Index, QueryZeroKEmpty) {
  const AttributeMatrix points = RandomPoints(5, 2, 3);
  const EuclideanSimilarity sim(100.0);
  const double query[] = {0.0, 0.0};
  for (const char* name : kAllIndexes) {
    EXPECT_TRUE(MakeIndex(name, points, sim)->Query(query, 0).empty())
        << name;
  }
}

TEST(Index, DuplicatePointsTieBrokenById) {
  AttributeMatrix points(3, 1);
  points.Set(0, 0, 5.0);
  points.Set(1, 0, 5.0);
  points.Set(2, 0, 5.0);
  const EuclideanSimilarity sim(10.0);
  const double query[] = {5.0};
  for (const char* name : kAllIndexes) {
    const auto index = MakeIndex(name, points, sim);
    const auto result = index->Query(query, 3);
    ASSERT_EQ(result.size(), 3u) << name;
    EXPECT_EQ(result[0].id, 0) << name;
    EXPECT_EQ(result[1].id, 1) << name;
    EXPECT_EQ(result[2].id, 2) << name;
  }
}

TEST(Index, SinglePointIndex) {
  AttributeMatrix points(1, 2);
  points.Set(0, 0, 3.0);
  const EuclideanSimilarity sim(10.0);
  const double query[] = {1.0, 1.0};
  for (const char* name : kAllIndexes) {
    const auto index = MakeIndex(name, points, sim);  // must outlive cursor
    auto cursor = index->CreateCursor(query);
    const auto first = cursor->Next();
    ASSERT_TRUE(first.has_value()) << name;
    EXPECT_EQ(first->id, 0) << name;
    EXPECT_FALSE(cursor->Next().has_value()) << name;
  }
}

using AgreementParam = std::tuple<std::string, int, int, uint64_t>;

class IndexAgreementTest : public ::testing::TestWithParam<AgreementParam> {};

TEST_P(IndexAgreementTest, CursorEnumeratesAllPointsOnceInOrder) {
  const auto& [name, n, dim, seed] = GetParam();
  const AttributeMatrix points = RandomPoints(n, dim, seed);
  const EuclideanSimilarity sim(100.0);
  const auto index = MakeIndex(name, points, sim);
  auto cursor = index->CreateCursor(points.Row(0));
  std::set<int> seen;
  double previous = 2.0;  // above any similarity
  while (const auto neighbor = cursor->Next()) {
    ASSERT_TRUE(seen.insert(neighbor->id).second)
        << name << " returned id " << neighbor->id << " twice";
    ASSERT_LE(neighbor->similarity, previous + 1e-12) << name;
    previous = neighbor->similarity;
  }
  EXPECT_EQ(static_cast<int>(seen.size()), n) << name;
  EXPECT_FALSE(cursor->Next().has_value()) << name << " after exhaustion";
}

TEST_P(IndexAgreementTest, MatchesLinearScanExactly) {
  const auto& [name, n, dim, seed] = GetParam();
  const AttributeMatrix points = RandomPoints(n, dim, seed);
  const AttributeMatrix queries = RandomPoints(3, dim, seed + 500);
  const EuclideanSimilarity sim(100.0);
  const LinearScanIndex linear(points, sim);
  const auto other = MakeIndex(name, points, sim);
  for (int q = 0; q < queries.rows(); ++q) {
    auto linear_cursor = linear.CreateCursor(queries.Row(q));
    auto other_cursor = other->CreateCursor(queries.Row(q));
    while (true) {
      const auto a = linear_cursor->Next();
      const auto b = other_cursor->Next();
      ASSERT_EQ(a.has_value(), b.has_value()) << name;
      if (!a) break;
      ASSERT_EQ(a->id, b->id) << name << " query " << q;
      ASSERT_NEAR(a->similarity, b->similarity, 1e-12) << name;
    }
    // Top-k queries agree as well (k straddling batch/partition sizes).
    for (const int k : {1, 5, n}) {
      const auto top_linear = linear.Query(queries.Row(q), k);
      const auto top_other = other->Query(queries.Row(q), k);
      ASSERT_EQ(top_linear.size(), top_other.size()) << name;
      for (size_t i = 0; i < top_linear.size(); ++i) {
        ASSERT_EQ(top_linear[i].id, top_other[i].id) << name << " k=" << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IndexAgreementTest,
    ::testing::Combine(
        ::testing::Values("kdtree", "vafile", "idistance", "linear"),
        // Sizes straddle the linear cursor's initial batch (64), the
        // kd-tree leaf size (16), and the iDistance pivot count (16).
        ::testing::Values(1, 2, 16, 63, 64, 65, 200),
        ::testing::Values(1, 2, 3, 8), ::testing::Values(11, 12)),
    [](const ::testing::TestParamInfo<AgreementParam>& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

TEST(Index, HighDimensionalAgreement) {
  // d = 20 (the paper's default) — tree/grid indexes degenerate but must
  // stay correct.
  const AttributeMatrix points = RandomPoints(150, 20, 77);
  const EuclideanSimilarity sim(100.0);
  const LinearScanIndex linear(points, sim);
  for (const char* name : {"kdtree", "vafile", "idistance"}) {
    const auto other = MakeIndex(name, points, sim);
    auto lc = linear.CreateCursor(points.Row(5));
    auto oc = other->CreateCursor(points.Row(5));
    for (int i = 0; i < 150; ++i) {
      const auto a = lc->Next();
      const auto b = oc->Next();
      ASSERT_TRUE(a && b) << name;
      ASSERT_EQ(a->id, b->id) << name << " rank " << i;
    }
  }
}

TEST(Index, CursorWorksWithRbfSimilarity) {
  // RBF is Euclidean-monotone, so all distance-ordered indexes accept it;
  // similarity values differ from Eq. (1) but the order must match.
  const AttributeMatrix points = RandomPoints(40, 3, 5);
  const RbfSimilarity sim(50.0);
  const LinearScanIndex linear(points, sim);
  for (const char* name : {"kdtree", "vafile", "idistance"}) {
    const auto other = MakeIndex(name, points, sim);
    auto lc = linear.CreateCursor(points.Row(0));
    auto oc = other->CreateCursor(points.Row(0));
    while (true) {
      const auto a = lc->Next();
      const auto b = oc->Next();
      ASSERT_EQ(a.has_value(), b.has_value()) << name;
      if (!a) break;
      ASSERT_EQ(a->id, b->id) << name;
      ASSERT_NEAR(a->similarity, b->similarity, 1e-12) << name;
    }
  }
}

TEST(VaFile, RefinementFractionBelowOneOnClusteredData) {
  // Clustered data: most points' lower bounds exceed the k-th nearest,
  // so the VA-file should skip a good share of exact computations.
  Rng rng(31);
  AttributeMatrix points(2000, 4);
  for (int i = 0; i < points.rows(); ++i) {
    const double center = (i % 10) * 100.0;
    for (int j = 0; j < 4; ++j) {
      points.Set(i, j, center + rng.UniformReal(0.0, 5.0));
    }
  }
  const EuclideanSimilarity sim(1000.0);
  const VaFileIndex index(points, sim, /*bits=*/6);
  const double query[] = {0.0, 0.0, 0.0, 0.0};
  const auto top = index.Query(query, 10);
  ASSERT_EQ(top.size(), 10u);
  EXPECT_LT(index.last_refinement_fraction(), 0.5);
}

TEST(VaFile, BitsBoundsChecked) {
  const AttributeMatrix points = RandomPoints(4, 2, 1);
  const EuclideanSimilarity sim(100.0);
  EXPECT_DEATH(VaFileIndex(points, sim, 0), "bits per dim");
  EXPECT_DEATH(VaFileIndex(points, sim, 9), "bits per dim");
}

TEST(IDistance, PivotCountClampedToDataSize) {
  const AttributeMatrix points = RandomPoints(3, 2, 1);
  const EuclideanSimilarity sim(100.0);
  const IDistanceIndex index(points, sim, /*num_pivots=*/64);
  EXPECT_LE(index.num_pivots(), 3);
  const auto top = index.Query(points.Row(0), 3);
  EXPECT_EQ(top.size(), 3u);
}

TEST(IDistance, AllIdenticalPoints) {
  AttributeMatrix points(5, 2);
  for (int i = 0; i < 5; ++i) {
    points.Set(i, 0, 7.0);
    points.Set(i, 1, 7.0);
  }
  const EuclideanSimilarity sim(10.0);
  const IDistanceIndex index(points, sim);
  const double query[] = {1.0, 1.0};
  auto cursor = index.CreateCursor(query);
  for (int i = 0; i < 5; ++i) {
    const auto next = cursor->Next();
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->id, i);  // ties by ascending id
  }
  EXPECT_FALSE(cursor->Next().has_value());
}

// Greedy-GEACC must return the same matching whichever index backs its
// cursors — exercised here for the two paper-cited indexes (kdtree and
// linear are covered in solvers_test).
TEST(Index, GreedyIdenticalAcrossAllBackends) {
  // Deferred to tests/solvers_test.cc (IndexChoiceDoesNotChangeResult),
  // which now sweeps all four names.
  SUCCEED();
}

}  // namespace
}  // namespace geacc
