#include "core/preprocess.h"

#include <algorithm>
#include <cstdint>

#include "util/check.h"
#include "util/thread_pool.h"

namespace geacc {

ReducedInstance ReduceInstance(const Instance& original, int threads) {
  const int num_events = original.num_events();
  const int num_users = original.num_users();

  // Positive-similarity partner counts per side. The scan fans out over
  // events; each chunk owns its event_partners slice outright and folds a
  // private user_partners partial (integer adds, so the fold is
  // order-independent — chunk order is kept anyway for uniformity with the
  // pool's determinism contract).
  std::vector<int> event_partners(num_events, 0);
  std::vector<int> user_partners(num_users, 0);
  ThreadPool pool(threads);
  ParallelMap<std::vector<int>>(
      pool, 0, num_events,
      [&](int64_t chunk_begin, int64_t chunk_end) {
        std::vector<int> partial(num_users, 0);
        for (EventId v = static_cast<EventId>(chunk_begin);
             v < static_cast<EventId>(chunk_end); ++v) {
          for (UserId u = 0; u < num_users; ++u) {
            if (original.Similarity(v, u) > 0.0) {
              ++event_partners[v];
              ++partial[u];
            }
          }
        }
        return partial;
      },
      [&](const std::vector<int>& partial) {
        for (UserId u = 0; u < num_users; ++u) user_partners[u] += partial[u];
      });

  std::vector<EventId> event_map;   // reduced → original
  std::vector<UserId> user_map;
  std::vector<int> event_index(num_events, -1);  // original → reduced
  for (EventId v = 0; v < num_events; ++v) {
    if (event_partners[v] > 0) {
      event_index[v] = static_cast<int>(event_map.size());
      event_map.push_back(v);
    }
  }
  for (UserId u = 0; u < num_users; ++u) {
    if (user_partners[u] > 0) user_map.push_back(u);
  }

  const int dim = original.dim();
  AttributeMatrix events(static_cast<int>(event_map.size()), dim);
  AttributeMatrix users(static_cast<int>(user_map.size()), dim);
  std::vector<int> event_capacities(event_map.size());
  std::vector<int> user_capacities(user_map.size());
  int clamped = 0;
  for (size_t i = 0; i < event_map.size(); ++i) {
    const EventId v = event_map[i];
    const double* src = original.event_attributes().Row(v);
    std::copy(src, src + dim, events.MutableRow(static_cast<int>(i)));
    const int capacity =
        std::min(original.event_capacity(v), event_partners[v]);
    if (capacity != original.event_capacity(v)) ++clamped;
    event_capacities[i] = capacity;
  }
  for (size_t i = 0; i < user_map.size(); ++i) {
    const UserId u = user_map[i];
    const double* src = original.user_attributes().Row(u);
    std::copy(src, src + dim, users.MutableRow(static_cast<int>(i)));
    const int capacity =
        std::min(original.user_capacity(u), user_partners[u]);
    if (capacity != original.user_capacity(u)) ++clamped;
    user_capacities[i] = capacity;
  }

  ConflictGraph conflicts(static_cast<int>(event_map.size()));
  for (size_t i = 0; i < event_map.size(); ++i) {
    for (const EventId other : original.conflicts().ConflictsOf(event_map[i])) {
      const int other_reduced = event_index[other];
      if (other_reduced > static_cast<int>(i)) {
        conflicts.AddConflict(static_cast<EventId>(i),
                              static_cast<EventId>(other_reduced));
      }
    }
  }

  ReducedInstance result{
      Instance(std::move(events), std::move(event_capacities),
               std::move(users), std::move(user_capacities),
               std::move(conflicts), original.similarity().Clone()),
      std::move(event_map), std::move(user_map), 0, 0, clamped};
  result.dropped_events =
      num_events - static_cast<int>(result.event_map.size());
  result.dropped_users =
      num_users - static_cast<int>(result.user_map.size());
  return result;
}

Arrangement LiftArrangement(const ReducedInstance& reduced,
                            const Arrangement& arrangement,
                            const Instance& original) {
  GEACC_CHECK_EQ(arrangement.num_events(), reduced.instance.num_events());
  GEACC_CHECK_EQ(arrangement.num_users(), reduced.instance.num_users());
  Arrangement lifted(original.num_events(), original.num_users());
  for (UserId u = 0; u < arrangement.num_users(); ++u) {
    for (const EventId v : arrangement.EventsOf(u)) {
      lifted.Add(reduced.event_map[v], reduced.user_map[u]);
    }
  }
  return lifted;
}

}  // namespace geacc
