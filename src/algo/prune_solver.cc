#include "algo/prune_solver.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "algo/greedy_solver.h"
#include "obs/stats.h"
#include "util/memory.h"
#include "util/timer.h"

namespace geacc {
namespace {

// Recursion context for Search-GEACC (Algorithm 4). The instance is small
// (the search is exponential), so everything is precomputed densely.
class SearchContext {
 public:
  SearchContext(const Instance& instance, const SolverOptions& options,
                Arrangement seed, SolverStats* stats)
      : instance_(instance),
        options_(options),
        stats_(stats),
        num_events_(instance.num_events()),
        num_users_(instance.num_users()),
        best_(std::move(seed)),
        current_(num_events_, num_users_) {
    best_sum_ = best_.MaxSum(instance);

    // Dense similarity table and per-event users sorted by (sim desc,
    // id asc) — the "j-NN of v" lists of Section IV.
    sim_.resize(static_cast<size_t>(num_events_) * num_users_);
    sorted_users_.resize(static_cast<size_t>(num_events_) * num_users_);
    for (EventId v = 0; v < num_events_; ++v) {
      for (UserId u = 0; u < num_users_; ++u) {
        sim_[Flat(v, u)] = instance.Similarity(v, u);
      }
      UserId* row = sorted_users_.data() + Flat(v, 0);
      std::iota(row, row + num_users_, 0);
      std::sort(row, row + num_users_, [&](UserId a, UserId b) {
        const double sa = sim_[Flat(v, a)];
        const double sb = sim_[Flat(v, b)];
        if (sa != sb) return sa > sb;
        return a < b;
      });
    }

    // L: events in non-increasing s_v * c_v (Algorithm 3 line 5).
    event_order_.resize(num_events_);
    std::iota(event_order_.begin(), event_order_.end(), 0);
    if (options_.enable_event_ordering) {
      std::sort(event_order_.begin(), event_order_.end(),
                [&](EventId a, EventId b) {
                  const double pa = BestSim(a) * instance_.event_capacity(a);
                  const double pb = BestSim(b) * instance_.event_capacity(b);
                  if (pa != pb) return pa > pb;
                  return a < b;
                });
    }

    remaining_event_capacity_.resize(num_events_);
    remaining_user_capacity_.resize(num_users_);
    for (EventId v = 0; v < num_events_; ++v) {
      remaining_event_capacity_[v] = instance.event_capacity(v);
    }
    for (UserId u = 0; u < num_users_; ++u) {
      remaining_user_capacity_[u] = instance.user_capacity(u);
    }

    // sum_remain = Σ_{k ≥ 2} s_{L[k]} * c_{L[k]} (Algorithm 3 line 6).
    sum_remain_ = 0.0;
    for (int k = 1; k < num_events_; ++k) {
      const EventId v = event_order_[k];
      sum_remain_ += BestSim(v) * instance_.event_capacity(v);
    }
  }

  // Runs the recursion and returns the best matching found.
  Arrangement Run() {
    if (num_events_ > 0 && num_users_ > 0) Search(0, 0);
    return std::move(best_);
  }

  uint64_t ByteEstimate() const {
    return VectorBytes(sim_) + VectorBytes(sorted_users_) +
           VectorBytes(event_order_) + VectorBytes(remaining_event_capacity_) +
           VectorBytes(remaining_user_capacity_) + best_.ByteEstimate() +
           current_.ByteEstimate();
  }

 private:
  size_t Flat(EventId v, int j) const {
    return static_cast<size_t>(v) * num_users_ + j;
  }

  // s_v: similarity of v's nearest user (0 when there are no users).
  double BestSim(EventId v) const {
    if (num_users_ == 0) return 0.0;
    return sim_[Flat(v, sorted_users_[Flat(v, 0)])];
  }

  // 1-based recursion depth of the pair (event_pos, user_pos), i.e. the
  // number of pairs visited so far along this path — Fig. 6a's depth.
  int64_t Depth(int event_pos, int user_pos) const {
    return static_cast<int64_t>(event_pos) * num_users_ + user_pos + 1;
  }

  bool Truncated() {
    if (options_.max_search_invocations > 0 &&
        stats_->search_invocations >= options_.max_search_invocations) {
      stats_->search_truncated = true;
      return true;
    }
    return false;
  }

  void RecordPrune(int event_pos, int user_pos) {
    ++stats_->prune_events;
    stats_->sum_prune_depth += Depth(event_pos, user_pos);
  }

  void MaybeUpdateBest() {
    ++stats_->complete_searches;
    if (current_sum_ > best_sum_) {
      best_sum_ = current_sum_;
      // Deep-copy the current matching.
      Arrangement copy(num_events_, num_users_);
      for (UserId u = 0; u < num_users_; ++u) {
        for (const EventId v : current_.EventsOf(u)) copy.Add(v, u);
      }
      best_ = std::move(copy);
    }
  }

  // Shared tail of both branches (Algorithm 4 lines 6–17): after fixing
  // the state of the pair at (event_pos, user_pos), descend to the next
  // pair, applying Lemma 6's bound before each descent.
  void Advance(int event_pos, int user_pos) {
    const EventId v = event_order_[event_pos];
    if (user_pos + 1 >= num_users_ || remaining_event_capacity_[v] == 0) {
      // Done with v's pairs: move to the next event (lines 6–13).
      if (event_pos + 1 >= num_events_) {
        MaybeUpdateBest();  // all pairs enumerated (lines 7–9)
        return;
      }
      if (!options_.enable_pruning ||
          current_sum_ + sum_remain_ > best_sum_) {
        const EventId next_event = event_order_[event_pos + 1];
        const double next_term =
            BestSim(next_event) * instance_.event_capacity(next_event);
        sum_remain_ -= next_term;  // line 11
        Search(event_pos + 1, 0);
        sum_remain_ += next_term;  // line 13
      } else {
        RecordPrune(event_pos, user_pos);
      }
      return;
    }
    // Stay on v, move to its next NN (lines 14–17).
    const UserId next_user = sorted_users_[Flat(v, user_pos + 1)];
    const double bound_term = sim_[Flat(v, next_user)] *
                              remaining_event_capacity_[v];
    if (!options_.enable_pruning ||
        current_sum_ + sum_remain_ + bound_term > best_sum_) {
      Search(event_pos, user_pos + 1);
    } else {
      RecordPrune(event_pos, user_pos);
    }
  }

  // Algorithm 4: enumerate both states of the pair at (event_pos,
  // user_pos) where the event is L[event_pos] and the user is its
  // (user_pos+1)-th NN.
  void Search(int event_pos, int user_pos) {
    ++stats_->search_invocations;
    stats_->max_depth = std::max(stats_->max_depth, Depth(event_pos, user_pos));
    if (Truncated()) return;

    const EventId v = event_order_[event_pos];
    const UserId u = sorted_users_[Flat(v, user_pos)];
    const double similarity = sim_[Flat(v, u)];

    const bool addable =
        remaining_event_capacity_[v] > 0 && remaining_user_capacity_[u] > 0 &&
        similarity > 0.0 && !ConflictsWithMatched(v, u);
    if (addable) {
      // Branch 1: {v, u} matched (lines 4–19).
      ++stats_->branches_matched;
      current_.Add(v, u);
      --remaining_event_capacity_[v];
      --remaining_user_capacity_[u];
      current_sum_ += similarity;
      Advance(event_pos, user_pos);
      current_sum_ -= similarity;
      ++remaining_event_capacity_[v];
      ++remaining_user_capacity_[u];
      current_.Remove(v, u);
    }
    // Branch 2: {v, u} unmatched (line 20).
    Advance(event_pos, user_pos);
  }

  bool ConflictsWithMatched(EventId v, UserId u) const {
    for (const EventId w : current_.EventsOf(u)) {
      if (instance_.conflicts().AreConflicting(v, w)) return true;
    }
    return false;
  }

  const Instance& instance_;
  const SolverOptions& options_;
  SolverStats* stats_;
  const int num_events_;
  const int num_users_;

  std::vector<double> sim_;            // dense |V|×|U| similarities
  std::vector<UserId> sorted_users_;   // per event, users by sim desc
  std::vector<EventId> event_order_;   // L
  std::vector<int> remaining_event_capacity_;
  std::vector<int> remaining_user_capacity_;

  Arrangement best_;
  double best_sum_ = 0.0;
  Arrangement current_;
  double current_sum_ = 0.0;
  double sum_remain_ = 0.0;
};

}  // namespace

SolveResult PruneSolver::Solve(const Instance& instance) const {
  WallTimer timer;
  SolverStats stats;

  // Algorithm 3 line 1: warm-start with Greedy-GEACC so poor matchings are
  // pruned from the beginning.
  Arrangement seed(instance.num_events(), instance.num_users());
  if (options_.enable_greedy_seed && options_.enable_pruning) {
    GEACC_PHASE_TIMER("prune.greedy_seed");
    GreedySolver greedy(options_);
    seed = greedy.Solve(instance).arrangement;
  }

  SearchContext context(instance, options_, std::move(seed), &stats);
  Arrangement best = [&] {
    GEACC_PHASE_TIMER("prune.search");
    return context.Run();
  }();
  // Flushed once per solve from the SolverStats the recursion already
  // maintains; the search itself stays counter-free.
  GEACC_STATS_ADD("prune.nodes_visited", stats.search_invocations);
  GEACC_STATS_ADD("prune.nodes_pruned", stats.prune_events);
  GEACC_STATS_ADD("prune.complete_searches", stats.complete_searches);
  GEACC_STATS_ADD("prune.branches_matched", stats.branches_matched);
  stats.logical_peak_bytes = context.ByteEstimate();
  stats.wall_seconds = timer.Seconds();
  return {std::move(best), stats};
}

}  // namespace geacc
