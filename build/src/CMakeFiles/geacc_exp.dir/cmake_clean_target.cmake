file(REMOVE_RECURSE
  "libgeacc_exp.a"
)
