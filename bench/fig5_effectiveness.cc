// Fig. 5 c–d: effectiveness of the approximate solvers against the exact
// optimum. Paper setting: |V| = 5, |U| = 15, c_v ~ U[1,10], other
// parameters default, sweeping conflict density ρ.
//
// Expected shape (paper): at ρ = 0 MinCostFlow-GEACC returns the optimum;
// Greedy-GEACC stays within a few percent of the optimum everywhere; both
// approximations run orders of magnitude faster than Prune-GEACC.
//
// The default keeps the paper's c_u ~ U[1,4]; pass --max_cu to change it
// and --paper for more repetitions.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "algo/solvers.h"
#include "gen/synthetic.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  geacc::bench::CommonFlags common;
  int max_cu = 4;
  geacc::FlagSet flags;
  common.Register(flags);
  flags.AddInt("max_cu", &max_cu, "user capacity upper bound (U[1,max_cu])");
  flags.Parse(argc, argv);
  geacc::bench::ReportContext report("fig5_effectiveness", flags, common);
  const int reps = common.paper ? std::max(common.reps, 5) : common.reps;

  const std::vector<std::string> solver_names =
      common.SolverList({"mincostflow", "greedy", "prune"});

  geacc::Table max_sum_table(geacc::StrFormat(
      "Fig 5c: MaxSum vs optimal (|V|=5, |U|=15, c_v~U[1,10], c_u~U[1,%d])",
      max_cu));
  geacc::Table ratio_table("Fig 5c (derived): fraction of the optimum");
  geacc::Table time_table("Fig 5d: running time (s)");
  std::vector<std::string> header = {"rho"};
  for (const auto& name : solver_names) header.push_back(name);
  max_sum_table.SetHeader(header);
  time_table.SetHeader(header);
  ratio_table.SetHeader(header);

  for (const double density : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::vector<double> sums(solver_names.size(), 0.0);
    std::vector<double> times(solver_names.size(), 0.0);
    std::vector<double> cpus(solver_names.size(), 0.0);
    std::vector<std::map<std::string, int64_t>> counters(solver_names.size());
    double optimal_sum = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      geacc::SyntheticConfig synth;
      synth.num_events = 5;
      synth.num_users = 15;
      synth.event_capacity = geacc::DistributionSpec::Uniform(1.0, 10.0);
      synth.user_capacity = geacc::DistributionSpec::Uniform(
          1.0, static_cast<double>(max_cu));
      synth.conflict_density = density;
      synth.seed = static_cast<uint64_t>(common.seed) + rep * 7919;
      const geacc::Instance instance = geacc::GenerateSynthetic(synth);
      for (size_t s = 0; s < solver_names.size(); ++s) {
        // --threads becomes intra-solver lanes; results are
        // thread-invariant, so only the measured times change.
        geacc::SolverOptions solver_options;
        solver_options.threads = common.threads;
        common.ApplySolverOptions(&solver_options);
        const auto solver =
            geacc::CreateSolver(solver_names[s], solver_options);
        const geacc::RunRecord record =
            geacc::RunSolver(*solver, instance, common.selfcheck);
        sums[s] += record.max_sum;
        times[s] += record.seconds;
        cpus[s] += record.cpu_seconds;
        for (const auto& [counter, value] : record.counters) {
          counters[s][counter] += value;
        }
        if (solver_names[s] == "prune") optimal_sum += record.max_sum;
      }
    }
    const std::string label = geacc::StrFormat("%.2f", density);
    std::vector<std::string> sum_row = {label}, time_row = {label},
                             ratio_row = {label};
    for (size_t s = 0; s < solver_names.size(); ++s) {
      sum_row.push_back(geacc::StrFormat("%.3f", sums[s] / reps));
      time_row.push_back(geacc::StrFormat("%.5f", times[s] / reps));
      ratio_row.push_back(
          optimal_sum > 0.0
              ? geacc::StrFormat("%.4f", sums[s] / optimal_sum)
              : "n/a");
    }
    max_sum_table.AddRow(sum_row);
    time_table.AddRow(time_row);
    ratio_table.AddRow(ratio_row);

    for (size_t s = 0; s < solver_names.size(); ++s) {
      geacc::obs::BenchPoint point;
      point.label = "rho=" + label;
      point.solver = solver_names[s];
      point.wall_seconds = times[s] / reps;
      point.cpu_seconds = cpus[s] / reps;
      point.max_sum = sums[s] / reps;
      for (const auto& [counter, total] : counters[s]) {
        point.counters[counter] = total / reps;
      }
      report.AddPoint(std::move(point));
    }
  }

  max_sum_table.Print(std::cout);
  ratio_table.Print(std::cout);
  time_table.Print(std::cout);
  if (common.csv) {
    max_sum_table.WriteCsv(std::cout);
    time_table.WriteCsv(std::cout);
  }
  report.Write();
  return 0;
}
