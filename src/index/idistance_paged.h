// Disk-backed iDistance index (DESIGN.md §14).
//
// The out-of-core sibling of IDistanceIndex: the same pivot geometry and
// expanding-radius cursor (index/idistance_common.h), but the stretched
// key tree is a storage::PagedBPlusTree living in a temporary page file
// behind a memory-budgeted buffer pool. kNN cursors then stream leaf
// pages from disk through the pool's bounded frame set, so an instance
// whose key tree is many times the budget solves with resident index
// memory capped at budget + pivots.
//
// Enumeration is bit-identical to the in-memory backend by construction:
// both instantiate the one shared cursor template over trees with equal
// LowerBound/iteration semantics, fed the identical sorted entry list.
// tests/storage_backend_test.cc and the geacc_audit "paged/greedy"
// campaign check enforce this end to end.

#ifndef GEACC_INDEX_IDISTANCE_PAGED_H_
#define GEACC_INDEX_IDISTANCE_PAGED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/idistance_common.h"
#include "index/knn_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/paged_bplus_tree.h"

namespace geacc {

// Knobs for disk-backed index structures, threaded from SolverOptions /
// bench flags down to MakeIndex.
struct StorageOptions {
  uint64_t budget_bytes = 16ull << 20;  // buffer-pool byte budget
  uint32_t page_size = 8192;            // page file page size (power of 2)
  // Directory for the backing page file; "" = TMPDIR or /tmp. The file
  // name embeds pid + a process-wide counter, so concurrent indexes (and
  // processes) never collide.
  std::string dir;
  // Keep the page file on destruction (debugging); default unlinks it.
  bool keep_files = false;
};

class PagedIDistanceIndex final : public KnnIndex {
 public:
  // Builds the geometry in memory, streams the key tree into a fresh page
  // file under `storage.budget_bytes`, and serves all queries through the
  // pool. CHECK-fails if the page file cannot be created (the backing dir
  // must be writable — this is a constructor, matching the other index
  // backends' no-error-channel contract).
  PagedIDistanceIndex(const AttributeMatrix& points,
                      const SimilarityFunction& similarity,
                      const StorageOptions& storage, int num_pivots = 16);
  ~PagedIDistanceIndex() override;

  std::string Name() const override { return "idistance-paged"; }
  std::vector<Neighbor> Query(const double* query, int k) const override;
  std::unique_ptr<NnCursor> CreateCursor(const double* query) const override;
  // Resident memory: pivots + the pool's peak frame bytes (NOT the file
  // size — that is the point).
  uint64_t ByteEstimate() const override;

  int num_pivots() const { return geometry_.pivots.rows(); }
  uint64_t file_bytes() const { return tree_->file_bytes(); }
  const std::string& file_path() const { return path_; }
  storage::PoolStats pool_stats() const { return pool_->stats(); }

 private:
  using KeyTree = storage::PagedBPlusTree<double, int>;

  const AttributeMatrix& points_;
  const SimilarityFunction& similarity_;
  IDistanceGeometry geometry_;
  std::string path_;
  bool keep_files_ = false;
  std::unique_ptr<storage::PageFile> file_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<KeyTree> tree_;
};

// MakeIndex with storage knobs: adds "idistance-paged" to the name set
// (same non-monotone-similarity fallback to linear as the others). The
// 3-arg overload in knn_index.h forwards here with default options.
std::unique_ptr<KnnIndex> MakeIndex(const std::string& name,
                                    const AttributeMatrix& points,
                                    const SimilarityFunction& similarity,
                                    const StorageOptions& storage);

}  // namespace geacc

#endif  // GEACC_INDEX_IDISTANCE_PAGED_H_
