// Fig. 4, column 1: MaxSum / time / memory vs event capacity, c_v ~
// Uniform[1, max c_v] with max c_v ∈ {10, 20, 50, 100, 200}; other
// parameters Table III defaults.
//
// Expected shape (paper): MaxSum grows with c_v; MinCostFlow-GEACC's time
// grows with c_v (more flow units) until Σc_u caps the flow amount
// (Δmax = min{Σc_v, Σc_u}), after which the growth flattens; the other
// solvers are insensitive.

#include <vector>

#include "bench/bench_common.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  geacc::bench::CommonFlags common;
  geacc::FlagSet flags;
  common.Register(flags);
  flags.Parse(argc, argv);
  geacc::bench::ReportContext report("fig4_capacity_v", flags, common);

  geacc::SweepConfig config;
  config.title = "Fig 4 col 1: varying max event capacity";
  config.solvers =
      common.SolverList({"greedy", "mincostflow", "random-v", "random-u"});
  config.repetitions = common.reps;
  config.threads = common.threads;
  config.audit = common.selfcheck;
  common.ApplySolverOptions(&config.solver_options);
  config.seed = static_cast<uint64_t>(common.seed);

  std::vector<geacc::SweepPoint> points;
  for (const int max_cv : {10, 20, 50, 100, 200}) {
    points.push_back({std::to_string(max_cv), [max_cv](uint64_t seed) {
                        geacc::SyntheticConfig synth;
                        synth.event_capacity = geacc::DistributionSpec::Uniform(
                            1.0, static_cast<double>(max_cv));
                        synth.seed = seed;
                        return geacc::GenerateSynthetic(synth);
                      }});
  }

  const geacc::SweepResult result = geacc::RunSweep(config, points);
  geacc::bench::EmitSweep(config, result, "max c_v", common.csv);
  report.AddSweep(config, result);
  report.Write();
  return 0;
}
