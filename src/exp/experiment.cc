#include "exp/experiment.h"

#include <atomic>
#include <memory>
#include <thread>

#include "algo/solvers.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "verify/audit.h"

namespace geacc {

RunRecord RunSolver(const Solver& solver, const Instance& instance,
                    bool audit) {
  // StatsScope diffs only this thread's counters, so per-run attribution
  // stays exact even when RunSweep shards cells across a pool (each cell
  // runs its solvers on one thread; solvers that fan out internally
  // re-credit their worker-side deltas to this thread, see
  // obs::ForwardToCallingThread).
  const obs::StatsScope scope;
  const CpuTimer cpu_timer;
  SolveResult result = solver.Solve(instance);
  const double cpu_seconds = cpu_timer.Seconds();
  const obs::StatsSnapshot delta = scope.Harvest();
  const std::string violation = result.arrangement.Validate(instance);
  GEACC_CHECK(violation.empty())
      << solver.Name() << " produced an infeasible arrangement on "
      << instance.DebugString() << ": " << violation;
  if (audit) {
    // The auditor collects every violation (Validate stops at the first)
    // and adds the maximality check where the solver guarantees it.
    verify::AuditOptions audit_options;
    audit_options.check_maximality =
        verify::SolverGuaranteesMaximality(solver.Name());
    const verify::AuditReport report =
        verify::AuditArrangement(instance, result.arrangement, audit_options);
    GEACC_CHECK(report.ok())
        << solver.Name() << " failed the selfcheck audit on "
        << instance.DebugString() << ":\n"
        << report.Summary();
  }
  RunRecord record;
  record.solver = solver.Name();
  record.max_sum = result.arrangement.MaxSum(instance);
  record.seconds = result.stats.wall_seconds;
  record.cpu_seconds = cpu_seconds;
  record.logical_bytes = result.stats.logical_peak_bytes;
  record.matched_pairs = result.arrangement.size();
  record.stats = result.stats;
  record.counters = delta.counters;
  record.timers = delta.timers;
  return record;
}

SweepResult RunSweep(const SweepConfig& config,
                     const std::vector<SweepPoint>& points) {
  SweepResult result;
  result.records.resize(points.size());

  // One solver object per name; Solve() is const and reusable.
  std::vector<std::unique_ptr<Solver>> solvers;
  for (const std::string& name : config.solvers) {
    SolverOptions options = config.solver_options;
    std::unique_ptr<Solver> solver = CreateSolver(name, options);
    GEACC_CHECK(solver != nullptr) << "unknown solver '" << name << "'";
    solvers.push_back(std::move(solver));
  }

  for (size_t p = 0; p < points.size(); ++p) {
    result.x_labels.push_back(points[p].label);
    result.records[p].resize(solvers.size());
    for (auto& per_solver : result.records[p]) {
      per_solver.resize(config.repetitions);
    }
  }

  // One task per (point, repetition) cell; results land in preallocated
  // slots, so the outcome is identical for any thread count.
  struct Cell {
    size_t point;
    int rep;
  };
  std::vector<Cell> cells;
  for (size_t p = 0; p < points.size(); ++p) {
    for (int rep = 0; rep < config.repetitions; ++rep) {
      cells.push_back({p, rep});
    }
  }
  std::atomic<size_t> next_cell{0};
  auto worker = [&]() {
    while (true) {
      const size_t index = next_cell.fetch_add(1);
      if (index >= cells.size()) return;
      const auto [p, rep] = cells[index];
      const uint64_t seed = config.seed + static_cast<uint64_t>(rep) * 7919;
      const Instance instance = points[p].factory(seed);
      for (size_t s = 0; s < solvers.size(); ++s) {
        if (config.verbose) {
          GEACC_LOG(INFO) << config.title << ": point " << points[p].label
                          << " rep " << rep << " solver "
                          << solvers[s]->Name();
        }
        result.records[p][s][rep] =
            RunSolver(*solvers[s], instance, config.audit);
      }
    }
  };
  // Budget rule (see SweepConfig::threads): intra-solver lanes come out of
  // the same budget as sweep workers, so workers × lanes ≤ threads.
  const int solver_lanes = std::min(
      std::max(1, config.threads),
      ResolveThreadCount(config.solver_options.threads));
  const int thread_count = std::max(
      1, std::min<int>(std::max(1, config.threads) / solver_lanes,
                       static_cast<int>(cells.size())));
  if (thread_count == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(thread_count);
    for (int t = 0; t < thread_count; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }

  // Aggregate means per metric.
  for (size_t s = 0; s < solvers.size(); ++s) {
    const std::string& name = config.solvers[s];
    for (size_t p = 0; p < points.size(); ++p) {
      double sum_max_sum = 0.0, sum_seconds = 0.0, sum_cpu = 0.0,
             sum_mb = 0.0, sum_pairs = 0.0;
      const auto& reps = result.records[p][s];
      for (const RunRecord& record : reps) {
        sum_max_sum += record.max_sum;
        sum_seconds += record.seconds;
        sum_cpu += record.cpu_seconds;
        sum_mb += static_cast<double>(record.logical_bytes) / (1024.0 * 1024.0);
        sum_pairs += static_cast<double>(record.matched_pairs);
      }
      const double n = reps.empty() ? 1.0 : static_cast<double>(reps.size());
      result.metrics["max_sum"][name].push_back(sum_max_sum / n);
      result.metrics["seconds"][name].push_back(sum_seconds / n);
      result.metrics["cpu_seconds"][name].push_back(sum_cpu / n);
      result.metrics["memory_mb"][name].push_back(sum_mb / n);
      result.metrics["matched_pairs"][name].push_back(sum_pairs / n);
    }
  }
  return result;
}

Table MetricTable(const SweepResult& result, const std::string& metric,
                  const std::string& title, const std::string& x_title,
                  int precision) {
  Table table(title);
  const auto it = result.metrics.find(metric);
  GEACC_CHECK(it != result.metrics.end()) << "no metric '" << metric << "'";

  std::vector<std::string> header = {x_title};
  for (const auto& [solver, values] : it->second) header.push_back(solver);
  table.SetHeader(std::move(header));

  for (size_t p = 0; p < result.x_labels.size(); ++p) {
    std::vector<std::string> row = {result.x_labels[p]};
    for (const auto& [solver, values] : it->second) {
      row.push_back(StrFormat("%.*f", precision, values[p]));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

void PrintSweepTables(const SweepConfig& config, const SweepResult& result,
                      const std::string& x_title, std::ostream& os) {
  MetricTable(result, "max_sum", config.title + " — MaxSum", x_title, 3)
      .Print(os);
  MetricTable(result, "seconds", config.title + " — wall time (s)", x_title, 4)
      .Print(os);
  MetricTable(result, "memory_mb", config.title + " — solver memory (MB)",
              x_title, 3)
      .Print(os);
}

}  // namespace geacc
