// Page-based service checkpoints (DESIGN.md §14).
//
// The WAL (svc/wal.h) stays the source of truth, but full replay makes
// recovery O(history). A paged checkpoint makes it O(dirty pages) +
// O(suffix): the service periodically serializes its *slot-level* state —
// instance slots with tombstones, both arranger adjacency views in
// insertion order, and the accumulated sums as IEEE-754 bit patterns —
// and writes it into a storage::PageFile, rewriting only the pages whose
// content actually changed (checksum diff against the page headers).
// Recovery decodes the newest committed checkpoint, rebuilds the
// DynamicInstance + IncrementalArranger bit-identically, and replays only
// the WAL mutations past the checkpoint's applied_seq.
//
// Torn checkpoints are expected, not fatal: dirty-page diffing overwrites
// committed pages in place, so a crash mid-Write can leave a mix of old
// and new pages behind an old superblock. The superblock's whole-state
// checksum (PageFile::Meta::state_checksum) detects any such Frankenstein
// state, and every decode failure — torn page, truncated file, stale
// format — degrades to full WAL replay (tests/storage_crash_test.cc).
//
// Thread-safety: single-owner, driven by the service writer thread.

#ifndef GEACC_SVC_PAGED_CHECKPOINT_H_
#define GEACC_SVC_PAGED_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "dyn/dynamic_instance.h"
#include "dyn/incremental_arranger.h"
#include "storage/page_file.h"

namespace geacc::svc {

// The full recoverable state of an ArrangementService writer: everything
// needed to continue bit-identically from applied_seq.
struct ServiceState {
  std::string similarity_name;
  double similarity_param = 0.0;
  DynamicInstance::SlotState slot;
  IncrementalArranger::ArrangerState arranger;
};

// Text serialization (the %.17g / hex-bits conventions of src/io, so the
// round trip is exact). Deliberately separate from the page layer: the
// encoding is testable without a file, and the store treats it as bytes.
std::string EncodeServiceState(const ServiceState& state);
bool DecodeServiceState(const std::string& text, ServiceState* state,
                        std::string* error);

class PagedCheckpointStore {
 public:
  // Opens `path` if it holds a valid page file with this page size, else
  // creates/truncates it. Returns nullptr only on hard IO failures —
  // a corrupt existing file is recreated (the WAL has the data).
  static std::unique_ptr<PagedCheckpointStore> Open(const std::string& path,
                                                    uint32_t page_size,
                                                    std::string* error);

  struct WriteStats {
    int pages_total = 0;    // pages the encoded state spans
    int pages_written = 0;  // pages whose content actually changed
  };

  // Encodes `state`, diffs it page-by-page against the stored generation,
  // writes only changed pages, and commits a superblock covering
  // `applied_mutations` WAL entries. On failure the previous committed
  // checkpoint stays recoverable (or detectably torn — see header).
  bool Write(const ServiceState& state, int64_t applied_mutations,
             WriteStats* stats, std::string* error);

  // Decodes the newest committed checkpoint. Fails (soft) on an empty
  // store, a state-checksum mismatch, or a malformed encoding — callers
  // fall back to full WAL replay.
  bool Read(ServiceState* state, int64_t* applied_mutations,
            std::string* error);

  uint64_t file_bytes() const {
    return (2ull + file_->allocated_pages()) * file_->page_size();
  }
  const storage::PageFile& file() const { return *file_; }

 private:
  explicit PagedCheckpointStore(std::unique_ptr<storage::PageFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<storage::PageFile> file_;
};

}  // namespace geacc::svc

#endif  // GEACC_SVC_PAGED_CHECKPOINT_H_
