// Instance preprocessing: safe reductions before solving.
//
// GEACC instances from real platforms contain dead weight the solvers
// repeatedly re-discover: users with no positively-similar event, events
// with no positively-similar user, and (for the exact solvers, whose cost
// is exponential in the pair count) capacities that exceed what could ever
// be used. Reduce() removes the former and clamps the latter, returning an
// index mapping so arrangements can be lifted back to the original ids.
//
// Every reduction is exact: ReduceInstance preserves the optimal MaxSum,
// and LiftArrangement of a feasible reduced arrangement is feasible on the
// original instance with the same MaxSum (tested property).

#ifndef GEACC_CORE_PREPROCESS_H_
#define GEACC_CORE_PREPROCESS_H_

#include <vector>

#include "core/arrangement.h"
#include "core/instance.h"

namespace geacc {

struct ReducedInstance {
  Instance instance;
  // reduced id → original id.
  std::vector<EventId> event_map;
  std::vector<UserId> user_map;
  // Diagnostics.
  int dropped_events = 0;
  int dropped_users = 0;
  int clamped_capacities = 0;
};

// Applies the reductions (O(|V|·|U|) similarity scans):
//  * drop events with no user of positive similarity (they can never be
//    matched; the paper assumes they do not exist, real data disagrees);
//  * drop users with no event of positive similarity;
//  * clamp c_v to the number of positively-similar users and c_u to the
//    number of positively-similar non-… events (upper bounds on actual
//    use; tightens Prune-GEACC's s_v·c_v bound and Δmax).
//
// `threads` follows the SolverOptions::threads convention (1 = serial,
// 0 = auto): the O(|V|·|U|) valid-pair scan fans out over a thread pool,
// with per-chunk partner counts folded in chunk order so the result is
// bit-identical at any thread count.
ReducedInstance ReduceInstance(const Instance& original, int threads = 1);

// Lifts an arrangement on the reduced instance back to original ids.
Arrangement LiftArrangement(const ReducedInstance& reduced,
                            const Arrangement& arrangement,
                            const Instance& original);

}  // namespace geacc

#endif  // GEACC_CORE_PREPROCESS_H_
