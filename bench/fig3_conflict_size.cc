// Fig. 3, column 4: MaxSum / time / memory vs conflict density
// ρ = |CF| / (|V|(|V|-1)/2) ∈ {0, 0.25, 0.5, 0.75, 1}; all other
// parameters Table III defaults.
//
// Expected shape (paper): at ρ = 0 MinCostFlow-GEACC edges out Greedy
// (it is optimal there); MaxSum decreases as ρ grows; ρ barely affects
// running time.

#include <vector>

#include "bench/bench_common.h"
#include "gen/synthetic.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  geacc::bench::CommonFlags common;
  geacc::FlagSet flags;
  common.Register(flags);
  flags.Parse(argc, argv);
  geacc::bench::ReportContext report("fig3_conflict_size", flags, common);

  geacc::SweepConfig config;
  config.title = "Fig 3 col 4: varying conflict density";
  config.solvers =
      common.SolverList({"greedy", "mincostflow", "random-v", "random-u"});
  config.repetitions = common.reps;
  config.threads = common.threads;
  config.audit = common.selfcheck;
  common.ApplySolverOptions(&config.solver_options);
  config.seed = static_cast<uint64_t>(common.seed);

  std::vector<geacc::SweepPoint> points;
  for (const double density : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    points.push_back(
        {geacc::StrFormat("%.2f", density), [density](uint64_t seed) {
           geacc::SyntheticConfig synth;
           synth.conflict_density = density;
           synth.seed = seed;
           return geacc::GenerateSynthetic(synth);
         }});
  }

  const geacc::SweepResult result = geacc::RunSweep(config, points);
  geacc::bench::EmitSweep(config, result, "rho", common.csv);
  report.AddSweep(config, result);
  report.Write();
  return 0;
}
