// Plain-text serialization of mutation traces (dyn/mutation.h).
//
// A trace file embeds the epoch-0 instance in the instance_io format,
// followed by the mutation list — one line per mutation, keyed by the
// MutationKindName keywords:
//
//   geacc-trace v1
//   geacc-instance v1
//   ...                                     (instance_io block)
//   mutations 5
//   add_user <capacity> <attr_0> ... <attr_{d-1}>
//   add_event <capacity> <attr_0> ... <attr_{d-1}>
//   remove_user <id>
//   remove_event <id>
//   add_conflict <event_a> <event_b>
//   set_event_capacity <event> <capacity>
//   set_user_capacity <user> <capacity>
//   set_event_slot <event> <slot>
//   set_user_availability <user> <mask>
//
// Attributes round-trip bit-exactly (%.17g, as instance_io). The reader
// validates structure only (kinds, arity, numeric ranges ≥ 0, capacities
// ≥ 1, attribute arity = dim, slot ids < kMaxTimeSlots, availability
// masks in [0, 2^kMaxTimeSlots)); whether an id is alive at its epoch is
// a replay-time property checked by DynamicInstance. Like the other
// readers, malformed input returns std::nullopt with a diagnostic rather
// than aborting.

#ifndef GEACC_IO_TRACE_IO_H_
#define GEACC_IO_TRACE_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "dyn/mutation.h"

namespace geacc {

// ----- single mutations -----
//
// One mutation ⇔ one line of the trace format. These are the shared
// encode/decode for every consumer of the encoding: trace files, the
// service WAL (svc/wal.h), and the wire protocol's kMutate payload
// (svc/wire.h) — one parser, one error discipline.

void WriteMutationLine(const Mutation& mutation, std::ostream& os);
std::string FormatMutationLine(const Mutation& mutation);

// Parses one mutation line (sans newline) against attribute dimension
// `dim`. Returns nullopt with a reason on malformed input.
std::optional<Mutation> ParseMutationLine(const std::string& line, int dim,
                                          std::string* error = nullptr);

// ----- traces -----

void WriteTrace(const MutationTrace& trace, std::ostream& os);
bool WriteTraceToFile(const MutationTrace& trace, const std::string& path);

// On failure returns nullopt and, if `error` is non-null, stores a
// human-readable reason including the offending line number (relative to
// the start of the mutation section for mutation lines).
std::optional<MutationTrace> ReadTrace(std::istream& is,
                                       std::string* error = nullptr);
std::optional<MutationTrace> ReadTraceFromFile(const std::string& path,
                                               std::string* error = nullptr);

}  // namespace geacc

#endif  // GEACC_IO_TRACE_IO_H_
