// Tests for the shard coordinator (shard/coordinator.h): deterministic
// read-merge tie-breaks, routing determinism across coordinator
// incarnations, cross-shard conflict admission/rejection accounting, and
// the headline contract — a sharded repair pass is bit-identical to the
// single-node greedy-sortall solve of the same instance (DESIGN.md §16).

#include "shard/coordinator.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "algo/solvers.h"
#include "core/arrangement.h"
#include "core/attributes.h"
#include "core/conflict_graph.h"
#include "core/instance.h"
#include "gen/synthetic.h"
#include "shard/partition.h"
#include "svc/client.h"
#include "svc/service.h"
#include "svc/wire.h"
#include "verify/audit.h"

namespace geacc::shard {
namespace {

using svc::ScoredEvent;

// An in-process N-shard topology: empty score-only shard services behind
// InProcessClients, plus a coordinator over them. The same construction
// the verify campaign's sharded differential uses.
class Topology {
 public:
  Topology(int num_shards, const Instance& instance) {
    svc::ServiceOptions shard_options;
    shard_options.bootstrap_full_resolve = false;
    shard_options.repair.refill = false;
    for (int s = 0; s < num_shards; ++s) {
      Instance empty(AttributeMatrix(0, instance.dim()), {},
                     AttributeMatrix(0, instance.dim()), {}, ConflictGraph(0),
                     instance.similarity().Clone());
      services_.push_back(std::make_unique<svc::ArrangementService>(
          std::move(empty), shard_options));
      clients_.push_back(
          std::make_unique<svc::InProcessClient>(services_.back().get()));
      raw_clients_.push_back(clients_.back().get());
    }
    coordinator_ = std::make_unique<ShardCoordinator>(
        raw_clients_, instance.dim(), instance.similarity().Clone());
  }

  ~Topology() {
    for (auto& service : services_) service->Stop();
  }

  ShardCoordinator& coordinator() { return *coordinator_; }

 private:
  std::vector<std::unique_ptr<svc::ArrangementService>> services_;
  std::vector<std::unique_ptr<svc::InProcessClient>> clients_;
  std::vector<svc::ServiceClient*> raw_clients_;
  std::unique_ptr<ShardCoordinator> coordinator_;
};

TEST(MergeScoredLists, OrdersBySimilarityThenEventId) {
  const std::vector<std::vector<ScoredEvent>> lists = {
      {{5, 0.9}, {3, 0.5}},
      {{2, 0.9}, {7, 0.1}},
  };
  const std::vector<ScoredEvent> merged =
      ShardCoordinator::MergeScoredLists(lists, 10);
  const std::vector<ScoredEvent> expected = {
      {2, 0.9}, {5, 0.9}, {3, 0.5}, {7, 0.1}};
  EXPECT_EQ(merged, expected);
}

TEST(MergeScoredLists, HonorsKAndDropsDuplicateEvents) {
  const std::vector<std::vector<ScoredEvent>> lists = {
      {{4, 0.8}, {1, 0.3}},
      {{4, 0.8}, {9, 0.6}, {1, 0.3}},
  };
  // Event 4 and event 1 each appear in both lists; the merge keeps one
  // entry per event.
  const std::vector<ScoredEvent> full =
      ShardCoordinator::MergeScoredLists(lists, 10);
  const std::vector<ScoredEvent> expected = {{4, 0.8}, {9, 0.6}, {1, 0.3}};
  EXPECT_EQ(full, expected);

  const std::vector<ScoredEvent> top2 =
      ShardCoordinator::MergeScoredLists(lists, 2);
  const std::vector<ScoredEvent> expected2 = {{4, 0.8}, {9, 0.6}};
  EXPECT_EQ(top2, expected2);

  EXPECT_TRUE(ShardCoordinator::MergeScoredLists({}, 5).empty());
  EXPECT_TRUE(ShardCoordinator::MergeScoredLists(lists, 0).empty());
}

TEST(MergeScoredLists, StableUnderListPermutation) {
  const std::vector<ScoredEvent> a = {{3, 0.7}, {0, 0.7}, {8, 0.2}};
  const std::vector<ScoredEvent> b = {{1, 0.7}, {5, 0.4}};
  const std::vector<ScoredEvent> forward =
      ShardCoordinator::MergeScoredLists({a, b}, 10);
  const std::vector<ScoredEvent> backward =
      ShardCoordinator::MergeScoredLists({b, a}, 10);
  EXPECT_EQ(forward, backward);
  // Ties at 0.7 break on event id ascending, regardless of source list.
  const std::vector<ScoredEvent> expected = {
      {0, 0.7}, {1, 0.7}, {3, 0.7}, {5, 0.4}, {8, 0.2}};
  EXPECT_EQ(forward, expected);
}

Instance SmallInstance(uint64_t seed, int events, int users) {
  SyntheticConfig config;
  config.num_events = events;
  config.num_users = users;
  config.dim = 4;
  config.conflict_density = 0.3;
  config.event_capacity = DistributionSpec::Uniform(1.0, 4.0);
  config.user_capacity = DistributionSpec::Uniform(1.0, 3.0);
  config.seed = seed;
  return GenerateSynthetic(config);
}

TEST(ShardCoordinator, RoutingIsDeterministicAcrossIncarnations) {
  const Instance instance = SmallInstance(/*seed=*/7, /*events=*/8,
                                          /*users=*/30);
  Topology first(3, instance);
  Topology second(3, instance);
  for (ShardCoordinator* coordinator :
       {&first.coordinator(), &second.coordinator()}) {
    ASSERT_EQ(coordinator->ApplyInstance(instance), "");
    ASSERT_EQ(coordinator->RepairPass(), "");
  }
  // Identical admission order, not merely identical pair sets — routing,
  // candidate collection, and the global sort are all deterministic.
  EXPECT_EQ(first.coordinator().arrangement(),
            second.coordinator().arrangement());
  EXPECT_EQ(first.coordinator().global_max_sum(),
            second.coordinator().global_max_sum());
}

TEST(ShardCoordinator, CrossShardConflictRejectionIsChargedToEdgeOwner) {
  constexpr int kShards = 2;
  // Two conflicting events, both wanted by user 0 (capacity 2): greedy
  // admits the better-scored event, then rejects the other on the
  // conflict edge. User 1 sits close to event 1, so the edge still
  // admits a different user — conflicts are per-user, not global.
  InstanceBuilder builder;
  const EventId a = builder.AddEvent({0.0, 0.0}, 1);
  const EventId b = builder.AddEvent({10.0, 10.0}, 2);
  const UserId contested = builder.AddUser({1.0, 1.0}, 2);
  const UserId other = builder.AddUser({9.0, 9.0}, 1);
  builder.AddConflict(a, b);
  const Instance instance = builder.Build();
  ASSERT_GT(instance.Similarity(a, contested),
            instance.Similarity(b, contested));

  Topology topology(kShards, instance);
  ShardCoordinator& coordinator = topology.coordinator();
  ASSERT_EQ(coordinator.ApplyInstance(instance), "");
  ASSERT_EQ(coordinator.RepairPass(), "");

  Arrangement merged(instance.num_events(), instance.num_users());
  for (const auto& [event, user] : coordinator.arrangement()) {
    merged.Add(event, user);
  }
  const auto pairs = merged.SortedPairs();
  const std::vector<std::pair<EventId, UserId>> expected = {{a, contested},
                                                           {b, other}};
  EXPECT_EQ(pairs, expected);

  const svc::ShardTopologyStats stats = coordinator.Stats();
  EXPECT_EQ(stats.shard_count, kShards);
  EXPECT_EQ(stats.repair_admitted, 2);
  // (a, other) dies on event a's capacity; (b, contested) survives the
  // capacity checks (b has a free slot) and dies on the conflict edge.
  EXPECT_EQ(stats.repair_rejected_capacity, 1);
  EXPECT_EQ(stats.repair_rejected_conflict, 1);
  // The (b, contested) rejection is charged to the edge's owner shard; it
  // counts as a cross-edge reject exactly when that owner differs from
  // the contested user's home shard.
  const int64_t expected_cross =
      EdgeOwnerShard(a, b, kShards) != HomeShard(contested, kShards) ? 1 : 0;
  EXPECT_EQ(stats.cross_edge_rejects, expected_cross);
}

TEST(ShardCoordinator, ReadsMatchTheRepairedArrangement) {
  const Instance instance = SmallInstance(/*seed=*/11, /*events=*/6,
                                          /*users=*/20);
  Topology topology(3, instance);
  ShardCoordinator& coordinator = topology.coordinator();
  ASSERT_EQ(coordinator.ApplyInstance(instance), "");
  ASSERT_EQ(coordinator.RepairPass(), "");

  Arrangement merged(instance.num_events(), instance.num_users());
  std::vector<std::vector<UserId>> attendees(instance.num_events());
  for (const auto& [event, user] : coordinator.arrangement()) {
    merged.Add(event, user);
    attendees[event].push_back(user);
  }
  for (auto& users : attendees) std::sort(users.begin(), users.end());
  for (UserId user = 0; user < instance.num_users(); ++user) {
    std::vector<EventId> events;
    ASSERT_EQ(coordinator.GetAssignments(user, &events), "");
    EXPECT_EQ(events, merged.EventsOf(user)) << "user " << user;
  }
  for (EventId event = 0; event < instance.num_events(); ++event) {
    std::vector<UserId> users;
    ASSERT_EQ(coordinator.GetAttendees(event, &users), "");
    EXPECT_EQ(users, attendees[event]) << "event " << event;
  }
  // TopKEvents fans out and merges: descending similarity, event-id
  // tie-break, no duplicates, at most k entries.
  for (UserId user = 0; user < instance.num_users(); ++user) {
    std::vector<ScoredEvent> ranked;
    ASSERT_EQ(coordinator.TopKEvents(user, 4, &ranked), "");
    EXPECT_LE(ranked.size(), 4u);
    for (size_t i = 1; i < ranked.size(); ++i) {
      const bool ordered =
          ranked[i - 1].similarity > ranked[i].similarity ||
          (ranked[i - 1].similarity == ranked[i].similarity &&
           ranked[i - 1].event < ranked[i].event);
      EXPECT_TRUE(ordered) << "user " << user << " position " << i;
    }
  }
}

TEST(ShardCoordinator, ShardedRepairMatchesSingleNodeGreedySortAll) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const Instance instance = SmallInstance(seed, /*events=*/10,
                                            /*users=*/40);
    SolverOptions options;
    const SolveResult reference =
        CreateSolver("greedy-sortall", options)->Solve(instance);
    const auto reference_pairs = reference.arrangement.SortedPairs();

    for (const int num_shards : {2, 3}) {
      Topology topology(num_shards, instance);
      ShardCoordinator& coordinator = topology.coordinator();
      ASSERT_EQ(coordinator.ApplyInstance(instance), "");
      ASSERT_EQ(coordinator.RepairPass(), "");

      Arrangement merged(instance.num_events(), instance.num_users());
      double admission_order_sum = 0.0;
      for (const auto& [event, user] : coordinator.arrangement()) {
        merged.Add(event, user);
        admission_order_sum += instance.Similarity(event, user);
      }
      EXPECT_EQ(merged.SortedPairs(), reference_pairs)
          << "seed " << seed << " N=" << num_shards;
      // Bit-identical, not approximately equal: the coordinator admits in
      // the same order the single-node solver does.
      EXPECT_EQ(coordinator.global_max_sum(), admission_order_sum)
          << "seed " << seed << " N=" << num_shards;

      const verify::AuditReport audit =
          verify::AuditArrangement(instance, merged);
      EXPECT_TRUE(audit.ok())
          << "seed " << seed << " N=" << num_shards << "\n"
          << audit.Summary();
    }
  }
}

}  // namespace
}  // namespace geacc::shard
