#include "algo/brute_force_solver.h"

#include <vector>

#include "obs/stats.h"
#include "util/memory.h"
#include "util/timer.h"

namespace geacc {
namespace {

struct Pair {
  EventId v;
  UserId u;
  double similarity;
};

class BruteForce {
 public:
  BruteForce(const Instance& instance, const SolverOptions& options,
             SolverStats* stats)
      : instance_(instance), options_(options), stats_(stats) {
    for (EventId v = 0; v < instance.num_events(); ++v) {
      for (UserId u = 0; u < instance.num_users(); ++u) {
        const double sim = instance.Similarity(v, u);
        if (sim > 0.0) pairs_.push_back({v, u, sim});
      }
    }
    event_capacity_.resize(instance.num_events());
    user_capacity_.resize(instance.num_users());
    for (EventId v = 0; v < instance.num_events(); ++v) {
      event_capacity_[v] = instance.event_capacity(v);
    }
    for (UserId u = 0; u < instance.num_users(); ++u) {
      user_capacity_[u] = instance.user_capacity(u);
    }
    user_events_.resize(instance.num_users());
    best_pairs_.clear();
  }

  Arrangement Run() {
    Recurse(0);
    Arrangement best(instance_.num_events(), instance_.num_users());
    for (const size_t index : best_pairs_) {
      best.Add(pairs_[index].v, pairs_[index].u);
    }
    return best;
  }

 private:
  void Recurse(size_t position) {
    ++stats_->search_invocations;
    if (options_.max_search_invocations > 0 &&
        stats_->search_invocations >= options_.max_search_invocations) {
      stats_->search_truncated = true;
      return;
    }
    if (position == pairs_.size()) {
      ++stats_->complete_searches;
      if (current_sum_ > best_sum_) {
        best_sum_ = current_sum_;
        best_pairs_ = current_pairs_;
      }
      return;
    }
    const Pair& pair = pairs_[position];
    // Branch: include, if feasible.
    if (event_capacity_[pair.v] > 0 && user_capacity_[pair.u] > 0 &&
        !Conflicts(pair.v, pair.u)) {
      ++stats_->branches_matched;
      --event_capacity_[pair.v];
      --user_capacity_[pair.u];
      user_events_[pair.u].push_back(pair.v);
      current_pairs_.push_back(position);
      current_sum_ += pair.similarity;
      Recurse(position + 1);
      current_sum_ -= pair.similarity;
      current_pairs_.pop_back();
      user_events_[pair.u].pop_back();
      ++event_capacity_[pair.v];
      ++user_capacity_[pair.u];
    }
    // Branch: exclude.
    Recurse(position + 1);
  }

  bool Conflicts(EventId v, UserId u) const {
    for (const EventId w : user_events_[u]) {
      if (instance_.conflicts().AreConflicting(v, w)) return true;
    }
    return false;
  }

  const Instance& instance_;
  const SolverOptions& options_;
  SolverStats* stats_;
  std::vector<Pair> pairs_;
  std::vector<int> event_capacity_;
  std::vector<int> user_capacity_;
  std::vector<std::vector<EventId>> user_events_;
  std::vector<size_t> current_pairs_;
  std::vector<size_t> best_pairs_;
  double current_sum_ = 0.0;
  double best_sum_ = -1.0;  // the empty matching (sum 0) is a candidate
};

}  // namespace

SolveResult BruteForceSolver::Solve(const Instance& instance) const {
  WallTimer timer;
  SolverStats stats;
  BruteForce search(instance, options_, &stats);
  Arrangement best = search.Run();
  // Flushed once per solve; the recursion stays counter-free.
  GEACC_STATS_ADD("bruteforce.nodes_visited", stats.search_invocations);
  GEACC_STATS_ADD("bruteforce.complete_searches", stats.complete_searches);
  GEACC_STATS_ADD("bruteforce.branches_matched", stats.branches_matched);
  stats.wall_seconds = timer.Seconds();
  return {std::move(best), stats};
}

}  // namespace geacc
