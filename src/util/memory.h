// Process memory probes and a logical byte counter.
//
// The benches report two memory figures:
//  * VmHWM / VmRSS from /proc/self/status — what the paper measured, but
//    noisy and allocator-dependent;
//  * a deterministic "logical bytes" estimate summed from the major data
//    structures a solver allocates, reported via SolverStats.

#ifndef GEACC_UTIL_MEMORY_H_
#define GEACC_UTIL_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace geacc {

// Peak resident set size in bytes (VmHWM), or 0 if unavailable.
uint64_t PeakRssBytes();

// Current resident set size in bytes (VmRSS), or 0 if unavailable.
uint64_t CurrentRssBytes();

// Bytes held by a vector's heap buffer (capacity, not size).
template <typename T>
uint64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<uint64_t>(v.capacity()) * sizeof(T);
}

// Accumulator for logical byte estimates. Tracks the running total and the
// high-water mark so that transient structures are still accounted for.
class ByteCounter {
 public:
  void Add(uint64_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  void Remove(uint64_t bytes) { current_ = bytes > current_ ? 0 : current_ - bytes; }

  uint64_t current() const { return current_; }
  uint64_t peak() const { return peak_; }

 private:
  uint64_t current_ = 0;
  uint64_t peak_ = 0;
};

}  // namespace geacc

#endif  // GEACC_UTIL_MEMORY_H_
