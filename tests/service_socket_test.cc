// End-to-end over a real socket: a ServiceServer on an ephemeral loopback
// port must answer exactly what the in-process client answers, honor
// read-your-writes via MutateAck tickets + stats polling, reply kError
// (without dying) to bad arguments, and survive a peer that sends garbage
// frames.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "dyn/mutation.h"
#include "gen/synthetic.h"
#include "svc/client.h"
#include "svc/server.h"
#include "svc/service.h"
#include "svc/wire.h"

namespace geacc::svc {
namespace {

class SocketServiceTest : public testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.num_events = 10;
    config.num_users = 50;
    config.dim = 3;
    config.seed = 77;
    service_ = std::make_unique<ArrangementService>(GenerateSynthetic(config),
                                                    ServiceOptions{});
    server_ = std::make_unique<ServiceServer>(service_.get());
    std::string error;
    ASSERT_TRUE(server_->Start(0, &error)) << error;
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override {
    server_->Stop();
    service_->Stop();
  }

  // A raw loopback connection for speaking malformed bytes.
  int RawConnect() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  }

  std::unique_ptr<ArrangementService> service_;
  std::unique_ptr<ServiceServer> server_;
};

TEST_F(SocketServiceTest, ReadsMatchInProcessClient) {
  SocketClient socket_client;
  std::string error;
  ASSERT_TRUE(socket_client.Connect("127.0.0.1", server_->port(), &error))
      << error;
  InProcessClient local(service_.get());

  ASSERT_EQ(socket_client.Ping(), RpcStatus::kOk);

  for (UserId u = 0; u < 50; u += 9) {
    std::vector<EventId> remote, expected;
    ASSERT_EQ(socket_client.GetAssignments(u, &remote), RpcStatus::kOk);
    ASSERT_EQ(local.GetAssignments(u, &expected), RpcStatus::kOk);
    EXPECT_EQ(remote, expected) << "user " << u;

    std::vector<ScoredEvent> remote_top, expected_top;
    ASSERT_EQ(socket_client.TopKEvents(u, 4, &remote_top), RpcStatus::kOk);
    ASSERT_EQ(local.TopKEvents(u, 4, &expected_top), RpcStatus::kOk);
    EXPECT_EQ(remote_top, expected_top) << "user " << u;
  }
  for (EventId v = 0; v < 10; v += 3) {
    std::vector<UserId> remote, expected;
    ASSERT_EQ(socket_client.GetAttendees(v, &remote), RpcStatus::kOk);
    ASSERT_EQ(local.GetAttendees(v, &expected), RpcStatus::kOk);
    EXPECT_EQ(remote, expected) << "event " << v;
  }

  ServiceStatsView remote_stats, expected_stats;
  ASSERT_EQ(socket_client.GetStats(&remote_stats), RpcStatus::kOk);
  ASSERT_EQ(local.GetStats(&expected_stats), RpcStatus::kOk);
  EXPECT_EQ(remote_stats.epoch, expected_stats.epoch);
  EXPECT_EQ(remote_stats.pairs, expected_stats.pairs);
  EXPECT_EQ(remote_stats.max_sum, expected_stats.max_sum);
  EXPECT_EQ(remote_stats.active_users, expected_stats.active_users);
}

TEST_F(SocketServiceTest, MutateIsReadYourWritesAfterTicketApplies) {
  SocketClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()));

  int64_t ticket = -1;
  ASSERT_EQ(client.Mutate(Mutation::SetUserCapacity(4, 3), &ticket),
            RpcStatus::kOk);
  ASSERT_GE(ticket, 1);

  // Read-your-writes protocol: poll stats until the ticket is applied.
  ServiceStatsView stats;
  for (int spin = 0; stats.applied_seq < ticket; ++spin) {
    ASSERT_LT(spin, 1000) << "ticket " << ticket << " never applied";
    ASSERT_EQ(client.GetStats(&stats), RpcStatus::kOk);
    if (stats.applied_seq < ticket) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(service_->snapshot()->user_capacity(4), 3);

  // An invalid mutation is a clean kServerError, and the connection
  // stays healthy.
  int64_t bad_ticket = -1;
  EXPECT_EQ(client.Mutate(Mutation::SetUserCapacity(9999, 2), &bad_ticket),
            RpcStatus::kServerError);
  EXPECT_FALSE(client.last_error().empty());
  EXPECT_EQ(client.Ping(), RpcStatus::kOk);
}

TEST_F(SocketServiceTest, BadArgumentsAreErrorsOnAHealthyConnection) {
  SocketClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()));

  std::vector<EventId> events;
  EXPECT_EQ(client.GetAssignments(-1, &events), RpcStatus::kServerError);
  EXPECT_EQ(client.GetAssignments(100000, &events), RpcStatus::kServerError);
  std::vector<ScoredEvent> top;
  EXPECT_EQ(client.TopKEvents(0, -5, &top), RpcStatus::kServerError);
  // Still healthy after three rejected calls.
  EXPECT_EQ(client.Ping(), RpcStatus::kOk);
  EXPECT_EQ(client.GetAssignments(0, &events), RpcStatus::kOk);
}

TEST_F(SocketServiceTest, GarbageFramesDoNotKillTheServer) {
  // Oversized length prefix.
  {
    const int fd = RawConnect();
    uint32_t huge = (1u << 20) + 1;
    ASSERT_EQ(::send(fd, &huge, 4, MSG_NOSIGNAL), 4);
    char byte;
    EXPECT_GE(::recv(fd, &byte, 1, 0), 0);  // kError or clean close
    ::close(fd);
  }
  // Valid length, garbage body.
  {
    const int fd = RawConnect();
    const uint32_t length = 6;
    std::string frame(reinterpret_cast<const char*>(&length), 4);
    frame += std::string("\xFF\xFF\xFF\xFF\xFF\xFF", 6);
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));
    char byte;
    EXPECT_GE(::recv(fd, &byte, 1, 0), 0);
    ::close(fd);
  }
  // Half a frame, then hang up mid-message.
  {
    const int fd = RawConnect();
    const uint32_t length = 100;
    ASSERT_EQ(::send(fd, &length, 4, MSG_NOSIGNAL), 4);
    ASSERT_EQ(::send(fd, "abc", 3, MSG_NOSIGNAL), 3);
    ::close(fd);
  }

  // After all that abuse a fresh client still gets full service.
  SocketClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), &error)) << error;
  EXPECT_EQ(client.Ping(), RpcStatus::kOk);
  std::vector<EventId> events;
  EXPECT_EQ(client.GetAssignments(0, &events), RpcStatus::kOk);
}

TEST_F(SocketServiceTest, ConcurrentSocketClientsSeeConsistentSnapshots) {
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      SocketClient client;
      if (!client.Connect("127.0.0.1", server_->port())) {
        ++failures;
        return;
      }
      for (int round = 0; round < 50; ++round) {
        const UserId u = (t * 13 + round) % 50;
        std::vector<EventId> events;
        if (client.GetAssignments(u, &events) != RpcStatus::kOk) {
          ++failures;
          return;
        }
        for (const EventId v : events) {
          std::vector<UserId> attendees;
          if (client.GetAttendees(v, &attendees) != RpcStatus::kOk ||
              std::find(attendees.begin(), attendees.end(), u) ==
                  attendees.end()) {
            ++failures;  // reverse edge must exist: no mutations in flight
            return;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace geacc::svc
