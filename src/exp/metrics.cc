#include "exp/metrics.h"

#include "util/check.h"
#include "util/string_util.h"

namespace geacc {

ArrangementMetrics ComputeMetrics(const Instance& instance,
                                  const Arrangement& arrangement) {
  GEACC_CHECK_EQ(instance.num_events(), arrangement.num_events());
  GEACC_CHECK_EQ(instance.num_users(), arrangement.num_users());
  ArrangementMetrics metrics;
  metrics.matched_pairs = arrangement.size();
  metrics.max_sum = arrangement.MaxSum(instance);
  if (metrics.matched_pairs > 0) {
    metrics.mean_matched_similarity =
        metrics.max_sum / static_cast<double>(metrics.matched_pairs);
  }

  const int num_events = instance.num_events();
  if (num_events > 0 && instance.total_event_capacity() > 0) {
    int64_t seats = 0;
    int with_attendees = 0;
    double fill = 0.0;
    for (EventId v = 0; v < num_events; ++v) {
      const int load = arrangement.EventLoad(v);
      seats += load;
      if (load > 0) ++with_attendees;
      fill += static_cast<double>(load) / instance.event_capacity(v);
    }
    metrics.seat_utilization =
        static_cast<double>(seats) /
        static_cast<double>(instance.total_event_capacity());
    metrics.events_with_attendees =
        static_cast<double>(with_attendees) / num_events;
    metrics.mean_event_fill = fill / num_events;
  }

  const int num_users = instance.num_users();
  if (num_users > 0) {
    int covered = 0;
    int64_t load_sum = 0;
    double interest_sum = 0.0, interest_sq_sum = 0.0;
    for (UserId u = 0; u < num_users; ++u) {
      const int load = arrangement.UserLoad(u);
      load_sum += load;
      if (load > 0) ++covered;
      double interest = 0.0;
      for (const EventId v : arrangement.EventsOf(u)) {
        interest += instance.Similarity(v, u);
      }
      interest_sum += interest;
      interest_sq_sum += interest * interest;
    }
    metrics.user_coverage = static_cast<double>(covered) / num_users;
    metrics.mean_user_load = static_cast<double>(load_sum) / num_users;
    if (interest_sq_sum > 0.0) {
      metrics.jain_fairness = interest_sum * interest_sum /
                              (num_users * interest_sq_sum);
    }
  }
  return metrics;
}

std::string ArrangementMetrics::DebugString() const {
  return StrFormat(
      "MaxSum=%.3f pairs=%lld seat_util=%.3f user_cov=%.3f "
      "mean_sim=%.3f jain=%.3f",
      max_sum, (long long)matched_pairs, seat_utilization, user_coverage,
      mean_matched_similarity, jain_fairness);
}

}  // namespace geacc
