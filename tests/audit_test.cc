// The verify::AuditArrangement auditor: one fixture per violation class,
// plus the always-on Arrangement::Remove bounds checks (regression: they
// were debug-only, so a bad id from an untrusted mutation stream was an
// out-of-bounds write in Release builds).

#include "verify/audit.h"

#include <string>

#include "algo/solvers.h"
#include "core/arrangement.h"
#include "core/instance.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

using testing::MakeTableInstance;
using verify::AuditArrangement;
using verify::AuditOptions;
using verify::AuditReport;
using verify::Violation;
using verify::ViolationKind;
using verify::ViolationKindName;

// The single violation of `kind` in `report`; fails the test if absent.
const Violation& FindViolation(const AuditReport& report,
                               ViolationKind kind) {
  for (const Violation& violation : report.violations) {
    if (violation.kind == kind) return violation;
  }
  ADD_FAILURE() << "no violation of kind " << ViolationKindName(kind);
  static const Violation missing{};
  return missing;
}

// 2 events (caps 2, 1), 3 users (caps 1, 2, 1), v0 ⊥ v1, and one
// non-positive similarity cell: sim(v1, u2) = 0.
Instance SmallInstance() {
  return MakeTableInstance({{0.9, 0.8, 0.7}, {0.6, 0.5, 0.0}}, {2, 1},
                           {1, 2, 1}, {{0, 1}});
}

TEST(AuditTest, CleanArrangementPasses) {
  const Instance instance = SmallInstance();
  Arrangement arrangement(2, 3);
  arrangement.Add(0, 0);
  arrangement.Add(0, 1);
  ASSERT_TRUE(arrangement.Validate(instance).empty());
  EXPECT_TRUE(AuditArrangement(instance, arrangement).ok());
}

TEST(AuditTest, InstanceMismatch) {
  const Instance instance = SmallInstance();
  const Arrangement arrangement(4, 4);
  const AuditReport report = AuditArrangement(instance, arrangement);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kInstanceMismatch);
}

TEST(AuditTest, EventOverCapacity) {
  const Instance instance = SmallInstance();
  Arrangement arrangement(2, 3);
  arrangement.Add(1, 0);  // c_{v1} = 1 ...
  arrangement.Add(1, 1);  // ... so a second attendee overflows it
  const AuditReport report = AuditArrangement(instance, arrangement);
  ASSERT_EQ(report.Count(ViolationKind::kEventOverCapacity), 1);
  const Violation& violation =
      FindViolation(report, ViolationKind::kEventOverCapacity);
  EXPECT_EQ(violation.event, 1);
  EXPECT_EQ(violation.observed, 2.0);
  EXPECT_EQ(violation.limit, 1.0);
}

TEST(AuditTest, UserOverCapacity) {
  const Instance instance = SmallInstance();
  Arrangement arrangement(2, 3);
  arrangement.Add(0, 0);  // c_{u0} = 1
  arrangement.Add(1, 0);
  const AuditReport report = AuditArrangement(instance, arrangement);
  EXPECT_EQ(report.Count(ViolationKind::kUserOverCapacity), 1);
  // v0 ⊥ v1, so the same pair of assignments is also a conflict.
  EXPECT_EQ(report.Count(ViolationKind::kConflictingPair), 1);
}

TEST(AuditTest, NonPositiveSimilarity) {
  const Instance instance = SmallInstance();
  Arrangement arrangement(2, 3);
  arrangement.Add(1, 2);  // sim(v1, u2) = 0
  const AuditReport report = AuditArrangement(instance, arrangement);
  ASSERT_EQ(report.Count(ViolationKind::kNonPositiveSimilarity), 1);
  EXPECT_EQ(report.violations[0].observed, 0.0);
}

TEST(AuditTest, DuplicatePair) {
  const Instance instance = SmallInstance();
  Arrangement arrangement(2, 3);
  arrangement.Add(0, 1);
  arrangement.AddUnchecked(0, 1);  // corruption: Add() would reject it
  arrangement.AddUnchecked(0, 1);
  const AuditReport report = AuditArrangement(instance, arrangement);
  // Reported once with the multiplicity, not once per copy.
  ASSERT_EQ(report.Count(ViolationKind::kDuplicatePair), 1);
  const Violation& violation =
      FindViolation(report, ViolationKind::kDuplicatePair);
  EXPECT_EQ(violation.event, 0);
  EXPECT_EQ(violation.user, 1);
  EXPECT_EQ(violation.observed, 3.0);
  // Three copies against c_{v0} = 2 also overflow the event.
  EXPECT_EQ(report.Count(ViolationKind::kEventOverCapacity), 1);
}

TEST(AuditTest, ConflictingPair) {
  const Instance instance = SmallInstance();
  Arrangement arrangement(2, 3);
  arrangement.Add(0, 1);  // c_{u1} = 2, but v0 ⊥ v1
  arrangement.Add(1, 1);
  const AuditReport report = AuditArrangement(instance, arrangement);
  ASSERT_EQ(report.Count(ViolationKind::kConflictingPair), 1);
  const Violation& violation = report.violations[0];
  EXPECT_EQ(violation.event, 0);
  EXPECT_EQ(violation.other_event, 1);
  EXPECT_EQ(violation.user, 1);
}

TEST(AuditTest, PairOutOfRange) {
  const Instance instance = SmallInstance();
  Arrangement arrangement(2, 3);
  arrangement.AddUnchecked(7, 0);
  const AuditReport report = AuditArrangement(instance, arrangement);
  ASSERT_EQ(report.Count(ViolationKind::kPairOutOfRange), 1);
  EXPECT_EQ(report.violations[0].event, 7);
}

TEST(AuditTest, NonMaximalOnlyWhenRequested) {
  const Instance instance = SmallInstance();
  const Arrangement empty(2, 3);  // every positive pair is still addable
  EXPECT_TRUE(AuditArrangement(instance, empty).ok());
  AuditOptions options;
  options.check_maximality = true;
  const AuditReport report = AuditArrangement(instance, empty, options);
  EXPECT_GT(report.Count(ViolationKind::kNonMaximal), 0);
}

TEST(AuditTest, MaximalGreedyArrangementPasses) {
  const Instance instance = testing::PaperTableIExample();
  const SolveResult result =
      CreateSolver("greedy", SolverOptions())->Solve(instance);
  AuditOptions options;
  options.check_maximality = true;
  EXPECT_TRUE(AuditArrangement(instance, result.arrangement, options).ok());
}

TEST(AuditTest, CollectsAllViolationsNotJustFirst) {
  const Instance instance = SmallInstance();
  Arrangement arrangement(2, 3);
  arrangement.Add(0, 0);
  arrangement.Add(1, 0);        // user over capacity + conflict
  arrangement.Add(1, 2);        // non-positive similarity
  arrangement.AddUnchecked(7, 1);  // out of range
  // Validate() stops at the first problem; the auditor keeps going.
  EXPECT_FALSE(arrangement.Validate(instance).empty());
  const AuditReport report = AuditArrangement(instance, arrangement);
  EXPECT_GE(report.violations.size(), 4u);
  EXPECT_EQ(report.Count(ViolationKind::kUserOverCapacity), 1);
  EXPECT_EQ(report.Count(ViolationKind::kConflictingPair), 1);
  EXPECT_EQ(report.Count(ViolationKind::kNonPositiveSimilarity), 1);
  EXPECT_EQ(report.Count(ViolationKind::kPairOutOfRange), 1);
  EXPECT_EQ(report.Count(ViolationKind::kEventOverCapacity), 1);  // v1: 2 > 1
}

TEST(AuditTest, MaxViolationsCapsTheReport) {
  const Instance instance = SmallInstance();
  Arrangement arrangement(2, 3);
  arrangement.Add(0, 0);
  arrangement.Add(1, 0);
  arrangement.Add(1, 2);
  AuditOptions options;
  options.max_violations = 2;
  const AuditReport report = AuditArrangement(instance, arrangement, options);
  EXPECT_EQ(report.violations.size(), 2u);
  EXPECT_FALSE(report.ok());
}

TEST(AuditTest, JsonReportCarriesCountsAndDescriptions) {
  const Instance instance = SmallInstance();
  Arrangement arrangement(2, 3);
  arrangement.Add(0, 1);
  arrangement.Add(1, 1);
  const AuditReport report = AuditArrangement(instance, arrangement);
  const std::string json = report.ToJson().Dump();
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("conflicting_pair"), std::string::npos);
  EXPECT_NE(json.find("conflicting events"), std::string::npos);
}

TEST(AuditTest, SolverMaximalityRegistry) {
  EXPECT_TRUE(verify::SolverGuaranteesMaximality("greedy"));
  EXPECT_TRUE(verify::SolverGuaranteesMaximality("greedy-sortall"));
  EXPECT_TRUE(verify::SolverGuaranteesMaximality("online-greedy"));
  EXPECT_TRUE(verify::SolverGuaranteesMaximality("prune"));
  EXPECT_TRUE(verify::SolverGuaranteesMaximality("exhaustive"));
  EXPECT_TRUE(verify::SolverGuaranteesMaximality("bruteforce"));
  // MCF's conflict resolution deletes pairs without refilling; the random
  // baselines offer pairs probabilistically. Neither is maximal.
  EXPECT_FALSE(verify::SolverGuaranteesMaximality("mincostflow"));
  EXPECT_FALSE(verify::SolverGuaranteesMaximality("random-v"));
  EXPECT_FALSE(verify::SolverGuaranteesMaximality("random-u"));
}

// Regression: Remove() used debug-only checks on its ids, so an
// out-of-range event id from an untrusted mutation stream corrupted
// event_loads_ in Release builds instead of aborting.
TEST(ArrangementRemoveDeathTest, OutOfRangeEventAborts) {
  Arrangement arrangement(2, 3);
  arrangement.Add(0, 0);
  EXPECT_DEATH(arrangement.Remove(-1, 0), "out of range");
  EXPECT_DEATH(arrangement.Remove(2, 0), "out of range");
}

TEST(ArrangementRemoveDeathTest, OutOfRangeUserAborts) {
  Arrangement arrangement(2, 3);
  arrangement.Add(0, 0);
  EXPECT_DEATH(arrangement.Remove(0, 3), "out of range");
  EXPECT_DEATH(arrangement.Remove(0, -1), "out of range");
}

}  // namespace
}  // namespace geacc
