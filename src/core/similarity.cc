#include "core/similarity.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/attributes.h"
#include "obs/stats.h"
#include "simd/simd.h"
#include "util/check.h"

namespace geacc {

// The batch entry points account one counter bump per batch (not per
// element) so the kernels themselves stay pure: simd.batched_evals counts
// rows scored through a blocked kernel, simd.scalar_evals rows scored by
// the per-pair fallback loop below.

void SimilarityFunction::ComputeBatch(const double* query,
                                      const BlockedAttributes& points,
                                      simd::FpMode /*fp*/,
                                      double* out) const {
  // Fallback for similarities without a batched kernel: gather each row
  // out of the blocked mirror into a contiguous buffer and score it with
  // Compute(). O(rows × dim) plus an O(dim) copy per row — correct for
  // any subclass, just not fast.
  const int dim = points.dim();
  const int64_t rows = points.rows();
  const double* blocked = points.data();
  GEACC_STATS_ADD("simd.scalar_evals", rows);
  std::vector<double> row(static_cast<size_t>(dim));
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t block = i / simd::kBlockRows;
    const int64_t lane = i % simd::kBlockRows;
    const double* base =
        blocked + block * static_cast<int64_t>(dim) * simd::kBlockRows;
    for (int j = 0; j < dim; ++j) {
      row[j] = base[static_cast<int64_t>(j) * simd::kBlockRows + lane];
    }
    out[i] = Compute(query, row.data(), dim);
  }
}

EuclideanSimilarity::EuclideanSimilarity(double max_attribute)
    : max_attribute_(max_attribute) {
  GEACC_CHECK_GT(max_attribute, 0.0) << "T must be positive";
}

double EuclideanSimilarity::Compute(const double* a, const double* b,
                                    int dim) const {
  if (dim == 0) return 1.0;
  const double dist = std::sqrt(SquaredEuclideanDistance(a, b, dim));
  const double max_dist = max_attribute_ * std::sqrt(static_cast<double>(dim));
  const double sim = 1.0 - dist / max_dist;
  // Attributes outside [0,T] would push sim below 0; clamp defensively.
  return std::clamp(sim, 0.0, 1.0);
}

void EuclideanSimilarity::ComputeBatch(const double* query,
                                       const BlockedAttributes& points,
                                       simd::FpMode fp, double* out) const {
  GEACC_STATS_ADD("simd.batched_evals", points.rows());
  simd::BatchEuclideanSimilarity(simd::ActiveLevel(), fp, max_attribute_,
                                 query, points.data(), points.dim(),
                                 points.rows(), out);
}

std::unique_ptr<SimilarityFunction> EuclideanSimilarity::Clone() const {
  return std::make_unique<EuclideanSimilarity>(max_attribute_);
}

double EuclideanSimilarity::DistanceForSimilarity(double sim, int dim) const {
  const double max_dist = max_attribute_ * std::sqrt(static_cast<double>(dim));
  return (1.0 - sim) * max_dist;
}

double CosineSimilarity::Compute(const double* a, const double* b,
                                 int dim) const {
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (int j = 0; j < dim; ++j) {
    dot += a[j] * b[j];
    norm_a += a[j] * a[j];
    norm_b += b[j] * b[j];
  }
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  return std::clamp(dot / std::sqrt(norm_a * norm_b), 0.0, 1.0);
}

void CosineSimilarity::ComputeBatch(const double* query,
                                    const BlockedAttributes& points,
                                    simd::FpMode fp, double* out) const {
  GEACC_STATS_ADD("simd.batched_evals", points.rows());
  simd::BatchCosineSimilarity(simd::ActiveLevel(), fp, query, points.data(),
                              points.dim(), points.rows(), out);
}

std::unique_ptr<SimilarityFunction> CosineSimilarity::Clone() const {
  return std::make_unique<CosineSimilarity>();
}

RbfSimilarity::RbfSimilarity(double bandwidth) : bandwidth_(bandwidth) {
  GEACC_CHECK_GT(bandwidth, 0.0);
  inv_two_bw_sq_ = 1.0 / (2.0 * bandwidth * bandwidth);
}

double RbfSimilarity::Compute(const double* a, const double* b,
                              int dim) const {
  return std::exp(-SquaredEuclideanDistance(a, b, dim) * inv_two_bw_sq_);
}

void RbfSimilarity::ComputeBatch(const double* query,
                                 const BlockedAttributes& points,
                                 simd::FpMode fp, double* out) const {
  GEACC_STATS_ADD("simd.batched_evals", points.rows());
  simd::BatchRbfSimilarity(simd::ActiveLevel(), fp, inv_two_bw_sq_, query,
                           points.data(), points.dim(), points.rows(), out);
}

std::unique_ptr<SimilarityFunction> RbfSimilarity::Clone() const {
  return std::make_unique<RbfSimilarity>(bandwidth_);
}

double DotSimilarity::Compute(const double* a, const double* b,
                              int dim) const {
  double dot = 0.0;
  for (int j = 0; j < dim; ++j) dot += a[j] * b[j];
  return std::clamp(dot, 0.0, 1.0);
}

void DotSimilarity::ComputeBatch(const double* query,
                                 const BlockedAttributes& points,
                                 simd::FpMode fp, double* out) const {
  GEACC_STATS_ADD("simd.batched_evals", points.rows());
  simd::BatchDotSimilarity(simd::ActiveLevel(), fp, query, points.data(),
                           points.dim(), points.rows(), out);
}

std::unique_ptr<SimilarityFunction> DotSimilarity::Clone() const {
  return std::make_unique<DotSimilarity>();
}

std::unique_ptr<SimilarityFunction> MakeSimilarity(const std::string& name,
                                                   double param) {
  if (name == "euclidean") return std::make_unique<EuclideanSimilarity>(param);
  if (name == "cosine") return std::make_unique<CosineSimilarity>();
  if (name == "rbf") return std::make_unique<RbfSimilarity>(param);
  if (name == "dot") return std::make_unique<DotSimilarity>();
  return nullptr;
}

}  // namespace geacc
