// Custom main for the micro_* google-benchmark binaries.
//
// Replaces benchmark::benchmark_main so every micro bench also accepts
//   --json PATH   write a `geacc-bench v1` report (one point per run)
//   --simd MODE   pin the batched-kernel dispatch level (auto/avx2/scalar;
//                 fails fast on an unavailable level — DESIGN.md §15)
// alongside the usual google-benchmark flags (--benchmark_filter etc.).
// Each TU defines its benchmarks as usual and ends with
//   GEACC_MICRO_MAIN("micro_foo");

#ifndef GEACC_BENCH_MICRO_COMMON_H_
#define GEACC_BENCH_MICRO_COMMON_H_

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "obs/bench_report.h"
#include "simd/simd.h"
#include "util/check.h"
#include "util/memory.h"

namespace geacc::bench {

// Prints the usual console table while keeping a copy of every
// per-iteration run for the JSON report.
class CollectingConsoleReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type == Run::RT_Iteration && !run.error_occurred) {
        collected_.push_back(run);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Run>& collected() const { return collected_; }

 private:
  std::vector<Run> collected_;
};

// Pulls --json PATH (or --json=PATH) out of argv — google-benchmark
// rejects flags it does not know — then runs the registered benchmarks
// and, when requested, writes the report. Returns the process exit code.
// `point_hook` (may be empty) runs over each report point before it is
// written — benches use it to attach optional sections (e.g. "storage")
// keyed off the point label.
inline int MicroBenchMain(
    const std::string& bench, int argc, char** argv,
    const std::function<void(obs::BenchPoint&)>& point_hook = {}) {
  std::string json_path;
  std::string simd_mode;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--simd" && i + 1 < argc) {
      simd_mode = argv[++i];
    } else if (arg.rfind("--simd=", 0) == 0) {
      simd_mode = arg.substr(7);
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (!simd_mode.empty()) {
    std::string error;
    if (!simd::SetDispatchOverride(simd_mode, &error)) {
      std::cerr << "--simd: " << error << "\n";
      return 1;
    }
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) {
    return 1;
  }

  CollectingConsoleReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  if (json_path.empty()) return 0;
  obs::BenchReport report;
  report.bench = bench;
  report.git_rev = obs::GitRevision();
  report.flags["json"] = json_path;
  const int64_t vm_hwm = static_cast<int64_t>(PeakRssBytes());
  for (const auto& run : reporter.collected()) {
    obs::BenchPoint point;
    point.label = run.benchmark_name();
    point.solver = "micro";  // schema slot; micro benches have no solver axis
    const double n =
        run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
    point.wall_seconds = run.real_accumulated_time / n;
    point.cpu_seconds = run.cpu_accumulated_time / n;
    point.vm_hwm_bytes = vm_hwm;
    point.counters["iterations"] = static_cast<int64_t>(run.iterations);
    if (point_hook) point_hook(point);
    report.points.push_back(std::move(point));
  }
  std::string error;
  GEACC_CHECK(report.WriteFile(json_path, &error)) << error;
  std::cout << "wrote geacc-bench v1 report: " << json_path << "\n";
  return 0;
}

}  // namespace geacc::bench

#define GEACC_MICRO_MAIN(bench_name)                             \
  int main(int argc, char** argv) {                              \
    return geacc::bench::MicroBenchMain(bench_name, argc, argv); \
  }

// Variant taking a per-point report hook (void(geacc::obs::BenchPoint&)).
#define GEACC_MICRO_MAIN_WITH_HOOK(bench_name, hook)                   \
  int main(int argc, char** argv) {                                    \
    return geacc::bench::MicroBenchMain(bench_name, argc, argv, hook); \
  }

#endif  // GEACC_BENCH_MICRO_COMMON_H_
