// Sort-all greedy baseline (ablation of Greedy-GEACC's lazy heap).
//
// Materializes every positive-similarity pair, sorts all |V|·|U| of them
// by (similarity desc, event asc, user asc), and adds each pair in order
// if it is feasible at that moment. Because feasibility is monotone
// (capacities only shrink, conflicts only accumulate), this produces the
// *identical* matching to Algorithm 2's heap construction — it is the
// specification Greedy-GEACC is tested against — at Θ(|V||U| log(|V||U|))
// time and Θ(|V||U|) memory, which is exactly the cost the paper's lazy
// NN frontiers avoid (quantified in bench/micro_solvers).
//
// Approximation ratio: 1 / (1 + max c_u), inherited from Theorem 3 (the
// output is pairwise identical to Greedy-GEACC's). Thread-safety:
// Solve() is const and re-entrant. Counters reported:
// sortall.pairs_materialized, sortall.pairs_scanned, sortall.matches.

#ifndef GEACC_ALGO_SORT_ALL_GREEDY_SOLVER_H_
#define GEACC_ALGO_SORT_ALL_GREEDY_SOLVER_H_

#include <string>

#include "core/instance.h"
#include "core/solver.h"

namespace geacc {

class SortAllGreedySolver final : public Solver {
 public:
  explicit SortAllGreedySolver(SolverOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "greedy-sortall"; }
  SolveResult Solve(const Instance& instance) const override;

 private:
  SolverOptions options_;
};

}  // namespace geacc

#endif  // GEACC_ALGO_SORT_ALL_GREEDY_SOLVER_H_
