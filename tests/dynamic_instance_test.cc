// Tests for the mutable epoch-stamped instance (src/dyn/).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/similarity.h"
#include "dyn/dynamic_instance.h"
#include "dyn/mutation.h"
#include "tests/test_util.h"

namespace geacc {
namespace {

using geacc::testing::MakeTableInstance;

DynamicInstance EmptyDynamic(int dim = 2) {
  return DynamicInstance(dim, std::make_unique<DotSimilarity>());
}

TEST(DynamicInstance, StartsEmptyAtEpochZero) {
  const DynamicInstance dynamic = EmptyDynamic(3);
  EXPECT_EQ(dynamic.epoch(), 0);
  EXPECT_EQ(dynamic.dim(), 3);
  EXPECT_EQ(dynamic.event_slots(), 0);
  EXPECT_EQ(dynamic.user_slots(), 0);
  EXPECT_EQ(dynamic.num_active_events(), 0);
  EXPECT_EQ(dynamic.num_active_users(), 0);
}

TEST(DynamicInstance, EveryMutationBumpsTheEpoch) {
  DynamicInstance dynamic = EmptyDynamic();
  const EventId v = dynamic.AddEvent({1.0, 0.0}, 2);
  EXPECT_EQ(dynamic.epoch(), 1);
  const UserId u = dynamic.AddUser({0.5, 0.5}, 1);
  EXPECT_EQ(dynamic.epoch(), 2);
  dynamic.SetEventCapacity(v, 5);
  dynamic.SetUserCapacity(u, 3);
  dynamic.RemoveUser(u);
  EXPECT_EQ(dynamic.epoch(), 5);
  EXPECT_EQ(dynamic.event_capacity(v), 5);
}

TEST(DynamicInstance, SlotIdsAreSequentialAndNeverReused) {
  DynamicInstance dynamic = EmptyDynamic();
  EXPECT_EQ(dynamic.AddUser({1.0, 0.0}, 1), 0);
  EXPECT_EQ(dynamic.AddUser({0.0, 1.0}, 1), 1);
  dynamic.RemoveUser(0);
  // The freed slot stays tombstoned; the next add gets a fresh id.
  EXPECT_EQ(dynamic.AddUser({1.0, 1.0}, 1), 2);
  EXPECT_EQ(dynamic.user_slots(), 3);
  EXPECT_EQ(dynamic.num_active_users(), 2);
  EXPECT_FALSE(dynamic.user_active(0));
  EXPECT_TRUE(dynamic.user_active(2));
}

TEST(DynamicInstance, SeedingFromAnInstanceKeepsEpochZero) {
  const Instance seed = MakeTableInstance(
      {{0.9, 0.1}, {0.4, 0.8}}, {2, 1}, {1, 2}, {{0, 1}});
  const DynamicInstance dynamic(seed);
  EXPECT_EQ(dynamic.epoch(), 0);
  EXPECT_EQ(dynamic.num_active_events(), 2);
  EXPECT_EQ(dynamic.num_active_users(), 2);
  EXPECT_EQ(dynamic.event_capacity(0), 2);
  EXPECT_EQ(dynamic.user_capacity(1), 2);
  EXPECT_TRUE(dynamic.conflicts().AreConflicting(0, 1));
  for (EventId v = 0; v < 2; ++v) {
    for (UserId u = 0; u < 2; ++u) {
      EXPECT_EQ(dynamic.Similarity(v, u), seed.Similarity(v, u));
    }
  }
}

TEST(DynamicInstance, RemoveEventDropsItsConflicts) {
  DynamicInstance dynamic = EmptyDynamic();
  const EventId a = dynamic.AddEvent({1.0, 0.0}, 1);
  const EventId b = dynamic.AddEvent({0.0, 1.0}, 1);
  const EventId c = dynamic.AddEvent({1.0, 1.0}, 1);
  dynamic.AddConflict(a, b);
  dynamic.AddConflict(a, c);
  dynamic.AddConflict(b, c);
  EXPECT_EQ(dynamic.conflicts().num_conflict_pairs(), 3);
  dynamic.RemoveEvent(a);
  EXPECT_EQ(dynamic.conflicts().num_conflict_pairs(), 1);
  EXPECT_FALSE(dynamic.conflicts().AreConflicting(a, b));
  EXPECT_TRUE(dynamic.conflicts().AreConflicting(b, c));
}

TEST(DynamicInstance, ApplyDispatchesAndReturnsNewSlotIds) {
  DynamicInstance dynamic = EmptyDynamic();
  EXPECT_EQ(dynamic.Apply(Mutation::AddEvent({1.0, 2.0}, 3)), 0);
  EXPECT_EQ(dynamic.Apply(Mutation::AddUser({0.0, 1.0}, 2)), 0);
  EXPECT_EQ(dynamic.Apply(Mutation::SetEventCapacity(0, 7)), -1);
  EXPECT_EQ(dynamic.Apply(Mutation::RemoveUser(0)), -1);
  EXPECT_EQ(dynamic.epoch(), 4);
  EXPECT_EQ(dynamic.event_capacity(0), 7);
  EXPECT_FALSE(dynamic.user_active(0));
}

TEST(DynamicInstance, SnapshotCompactsTombstonesAndRemapsConflicts) {
  DynamicInstance dynamic = EmptyDynamic();
  const EventId a = dynamic.AddEvent({1.0, 0.0}, 1);
  const EventId b = dynamic.AddEvent({0.0, 1.0}, 2);
  const EventId c = dynamic.AddEvent({1.0, 1.0}, 3);
  dynamic.AddConflict(b, c);
  dynamic.AddUser({2.0, 0.0}, 1);
  dynamic.AddUser({0.0, 2.0}, 2);
  dynamic.RemoveEvent(a);
  dynamic.RemoveUser(0);

  DynamicInstance::SnapshotMap map;
  const Instance snapshot = dynamic.Snapshot(&map);
  ASSERT_EQ(snapshot.num_events(), 2);
  ASSERT_EQ(snapshot.num_users(), 1);
  EXPECT_EQ(snapshot.Validate(), "");
  // Dense ids preserve slot order: {b, c} and the surviving user.
  EXPECT_EQ(map.dense_to_event, (std::vector<EventId>{b, c}));
  EXPECT_EQ(map.event_to_dense[a], -1);
  EXPECT_EQ(map.event_to_dense[b], 0);
  EXPECT_EQ(map.user_to_dense[1], 0);
  EXPECT_TRUE(snapshot.conflicts().AreConflicting(0, 1));
  EXPECT_EQ(snapshot.event_capacity(1), 3);
  EXPECT_EQ(snapshot.Similarity(0, 0), dynamic.Similarity(b, 1));
}

TEST(DynamicInstance, SnapshotOfEmptyInstanceIsEmpty) {
  const DynamicInstance dynamic = EmptyDynamic();
  const Instance snapshot = dynamic.Snapshot();
  EXPECT_EQ(snapshot.num_events(), 0);
  EXPECT_EQ(snapshot.num_users(), 0);
}

TEST(DynamicInstance, InvalidMutationsDie) {
  DynamicInstance dynamic = EmptyDynamic(2);
  const EventId v = dynamic.AddEvent({1.0, 0.0}, 1);
  const UserId u = dynamic.AddUser({0.0, 1.0}, 1);
  EXPECT_DEATH(dynamic.AddUser({1.0}, 1), "");          // wrong dim
  EXPECT_DEATH(dynamic.AddUser({1.0, 2.0}, 0), "");     // capacity < 1
  EXPECT_DEATH(dynamic.SetEventCapacity(v, 0), "");
  EXPECT_DEATH(dynamic.AddConflict(v, v), "");          // self conflict
  dynamic.RemoveUser(u);
  EXPECT_DEATH(dynamic.RemoveUser(u), "");              // already removed
  EXPECT_DEATH(dynamic.SetUserCapacity(u, 2), "");      // tombstoned
}

}  // namespace
}  // namespace geacc
