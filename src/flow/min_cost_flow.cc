#include "flow/min_cost_flow.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "obs/stats.h"
#include "util/memory.h"

namespace geacc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Tolerance for floating-point reduced costs: tiny negatives produced by
// accumulated rounding are clamped to zero.
constexpr double kEps = 1e-9;

}  // namespace

SuccessiveShortestPaths::SuccessiveShortestPaths(FlowGraph* graph, int source,
                                                 int sink)
    : graph_(graph), source_(source), sink_(sink) {
  GEACC_CHECK(graph != nullptr);
  GEACC_CHECK(source >= 0 && source < graph->num_nodes());
  GEACC_CHECK(sink >= 0 && sink < graph->num_nodes());
  GEACC_CHECK_NE(source, sink);
  const int n = graph->num_nodes();
  potential_.assign(n, 0.0);
  distance_.assign(n, kInf);
  parent_arc_.assign(n, -1);
  settled_.assign(n, false);
  if (graph->HasNegativeCost()) BellmanFordPotentials();
}

void SuccessiveShortestPaths::BellmanFordPotentials() {
  const int n = graph_->num_nodes();
  std::vector<double> dist(n, kInf);
  dist[source_] = 0.0;
  for (int round = 0; round < n; ++round) {
    bool changed = false;
    for (int node = 0; node < n; ++node) {
      if (dist[node] == kInf) continue;
      for (const int arc : graph_->OutArcs(node)) {
        if (graph_->ResidualCapacity(arc) <= 0) continue;
        const double candidate = dist[node] + graph_->Cost(arc);
        if (candidate < dist[graph_->Head(arc)] - kEps) {
          dist[graph_->Head(arc)] = candidate;
          changed = true;
        }
      }
    }
    if (!changed) break;
    GEACC_CHECK_LT(round, n - 1) << "negative cycle in flow network";
  }
  for (int node = 0; node < n; ++node) {
    if (dist[node] < kInf) potential_[node] = dist[node];
  }
}

bool SuccessiveShortestPaths::FindPath() {
  const int n = graph_->num_nodes();
  std::fill(distance_.begin(), distance_.end(), kInf);
  std::fill(parent_arc_.begin(), parent_arc_.end(), -1);
  std::fill(settled_.begin(), settled_.end(), false);
  distance_[source_] = 0.0;

  using Entry = std::pair<double, int>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  queue.emplace(0.0, source_);
  // Batched locally and flushed once per search so the inner loop stays
  // counter-free.
  int64_t settles = 0;
  int64_t relaxations = 0;
  while (!queue.empty()) {
    const auto [dist, node] = queue.top();
    queue.pop();
    if (settled_[node]) continue;
    settled_[node] = true;
    ++settles;
    if (node == sink_) break;  // sink settled — path found
    for (const int arc : graph_->OutArcs(node)) {
      if (graph_->ResidualCapacity(arc) <= 0) continue;
      const int head = graph_->Head(arc);
      if (settled_[head]) continue;
      double reduced =
          graph_->Cost(arc) + potential_[node] - potential_[head];
      GEACC_DCHECK(reduced > -1e-6) << "reduced cost " << reduced;
      if (reduced < 0.0) reduced = 0.0;  // rounding guard
      const double candidate = dist + reduced;
      if (candidate + kEps < distance_[head]) {
        ++relaxations;
        distance_[head] = candidate;
        parent_arc_[head] = arc;
        queue.emplace(candidate, head);
      }
    }
  }
  GEACC_STATS_ADD("flow.dijkstra.settles", settles);
  GEACC_STATS_ADD("flow.dijkstra.relaxations", relaxations);
  if (distance_[sink_] == kInf) return false;

  // Johnson update keeps reduced costs non-negative for the next search.
  const double sink_distance = distance_[sink_];
  for (int node = 0; node < n; ++node) {
    potential_[node] += std::min(distance_[node], sink_distance);
  }
  return true;
}

int64_t SuccessiveShortestPaths::AugmentIfCheaper(double cost_limit) {
  if (!FindPath()) return 0;
  double path_cost = 0.0;
  for (int node = sink_; node != source_;) {
    const int arc = parent_arc_[node];
    path_cost += graph_->Cost(arc);
    node = graph_->Tail(arc);
  }
  if (path_cost >= cost_limit) return 0;
  for (int node = sink_; node != source_;) {
    const int arc = parent_arc_[node];
    graph_->Push(arc, 1);
    node = graph_->Tail(arc);
  }
  total_flow_ += 1;
  total_cost_ += path_cost;
  GEACC_STATS_ADD("flow.augmenting_paths", 1);
  GEACC_STATS_ADD("flow.units_pushed", 1);
  return 1;
}

int64_t SuccessiveShortestPaths::Augment(int64_t max_units) {
  GEACC_CHECK_GT(max_units, 0);
  if (!FindPath()) return 0;
  // Bottleneck along the parent chain.
  int64_t bottleneck = max_units;
  for (int node = sink_; node != source_;) {
    const int arc = parent_arc_[node];
    bottleneck = std::min(bottleneck, graph_->ResidualCapacity(arc));
    node = graph_->Tail(arc);
  }
  GEACC_CHECK_GT(bottleneck, 0);
  double path_cost = 0.0;
  for (int node = sink_; node != source_;) {
    const int arc = parent_arc_[node];
    graph_->Push(arc, bottleneck);
    path_cost += graph_->Cost(arc);
    node = graph_->Tail(arc);
  }
  total_flow_ += bottleneck;
  total_cost_ += path_cost * static_cast<double>(bottleneck);
  GEACC_STATS_ADD("flow.augmenting_paths", 1);
  GEACC_STATS_ADD("flow.units_pushed", bottleneck);
  return bottleneck;
}

int64_t SuccessiveShortestPaths::RunToMaxFlow() {
  int64_t pushed = 0;
  while (true) {
    const int64_t step = Augment(std::numeric_limits<int64_t>::max());
    if (step == 0) return pushed;
    pushed += step;
  }
}

uint64_t SuccessiveShortestPaths::ByteEstimate() const {
  return VectorBytes(potential_) + VectorBytes(distance_) +
         VectorBytes(parent_arc_) +
         settled_.capacity() / 8;  // vector<bool> is bit-packed
}

}  // namespace geacc
