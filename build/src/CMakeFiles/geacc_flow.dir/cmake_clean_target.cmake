file(REMOVE_RECURSE
  "libgeacc_flow.a"
)
