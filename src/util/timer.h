// Wall-clock timing helper for benchmarks and solver statistics.

#ifndef GEACC_UTIL_TIMER_H_
#define GEACC_UTIL_TIMER_H_

#include <chrono>

namespace geacc {

// Monotonic stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace geacc

#endif  // GEACC_UTIL_TIMER_H_
