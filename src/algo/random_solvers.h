// The paper's random baselines (Section V, "Baselines").
//
// Random-V iterates events in id order and offers each pair {v, u} with
// probability c_v / |U|, accepting it if all constraints hold. Random-U is
// the symmetric user-side variant with probability c_u / |V|. Both are
// deterministic functions of SolverOptions::seed.
//
// Guarantee: none (baselines). Complexity: O(|V|·|U|) pair offers, each
// with an O(degree) conflict check. Thread-safety: Solve() is const and
// re-entrant (the RNG is seeded per call). Counters reported:
// random.pairs_considered, random.pairs_matched,
// random.infeasible_rejections.

#ifndef GEACC_ALGO_RANDOM_SOLVERS_H_
#define GEACC_ALGO_RANDOM_SOLVERS_H_

#include <string>

#include "core/instance.h"
#include "core/solver.h"

namespace geacc {

class RandomVSolver final : public Solver {
 public:
  explicit RandomVSolver(SolverOptions options = {}) : options_(options) {}

  std::string Name() const override { return "random-v"; }
  SolveResult Solve(const Instance& instance) const override;

 private:
  SolverOptions options_;
};

class RandomUSolver final : public Solver {
 public:
  explicit RandomUSolver(SolverOptions options = {}) : options_(options) {}

  std::string Name() const override { return "random-u"; }
  SolveResult Solve(const Instance& instance) const override;

 private:
  SolverOptions options_;
};

}  // namespace geacc

#endif  // GEACC_ALGO_RANDOM_SOLVERS_H_
