// Greedy-GEACC (paper Algorithm 2, Section III.B).
//
// Maintains a max-heap H of candidate pairs. Initially each event
// contributes its nearest user and each user its nearest event. Each
// iteration pops the globally most similar candidate, adds it to the
// matching if capacities and conflicts allow, and refills H with the
// popped endpoints' next *feasible unvisited* nearest neighbors, fetched
// from incremental NN cursors (src/index/). A pair enters H at most once;
// skipped-because-infeasible neighbors are permanently infeasible
// (capacities only decrease, matchings only grow), so consuming them from
// the cursor is safe.
//
// Approximation ratio: 1 / (1 + max c_u) (Theorem 3). In practice it beats
// MinCostFlow-GEACC on every metric — the paper's headline result.
//
// Complexity: O(M log M + C·I) where M ≤ Σc_v + Σc_u is the number of
// heap operations (each accepted pair frees at most two refills), C the
// cursor advances, and I the per-advance index cost (O(|U| / batch) for
// the linear cursor) — near-linear in practice (Fig. 5 a–b). Memory is
// O(|V| + |U|) beyond the index.
//
// Thread-safety: Solve() is const and re-entrant; all search state is
// per-call. Counters reported: greedy.heap_pushes/heap_pops,
// greedy.cursor_skips, greedy.matches (+ index.* from the cursors).

#ifndef GEACC_ALGO_GREEDY_SOLVER_H_
#define GEACC_ALGO_GREEDY_SOLVER_H_

#include <string>

#include "core/instance.h"
#include "core/solver.h"

namespace geacc {

class GreedySolver final : public Solver {
 public:
  explicit GreedySolver(SolverOptions options = {}) : options_(options) {}

  std::string Name() const override { return "greedy"; }
  SolveResult Solve(const Instance& instance) const override;

 private:
  SolverOptions options_;
};

}  // namespace geacc

#endif  // GEACC_ALGO_GREEDY_SOLVER_H_
