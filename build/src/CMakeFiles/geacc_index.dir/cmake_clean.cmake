file(REMOVE_RECURSE
  "CMakeFiles/geacc_index.dir/index/idistance_index.cc.o"
  "CMakeFiles/geacc_index.dir/index/idistance_index.cc.o.d"
  "CMakeFiles/geacc_index.dir/index/kd_tree_index.cc.o"
  "CMakeFiles/geacc_index.dir/index/kd_tree_index.cc.o.d"
  "CMakeFiles/geacc_index.dir/index/knn_index.cc.o"
  "CMakeFiles/geacc_index.dir/index/knn_index.cc.o.d"
  "CMakeFiles/geacc_index.dir/index/linear_scan_index.cc.o"
  "CMakeFiles/geacc_index.dir/index/linear_scan_index.cc.o.d"
  "CMakeFiles/geacc_index.dir/index/va_file_index.cc.o"
  "CMakeFiles/geacc_index.dir/index/va_file_index.cc.o.d"
  "libgeacc_index.a"
  "libgeacc_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geacc_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
