// Deterministic pseudo-random number generation.
//
// All randomized components of the library (generators, random baselines)
// take an explicit 64-bit seed and draw from this generator, so that every
// experiment is reproducible bit-for-bit across runs and machines.
//
// The engine is xoshiro256** seeded via splitmix64, a small, fast generator
// with good statistical quality; <random> engines are avoided because their
// distributions are not portable across standard library implementations.

#ifndef GEACC_UTIL_RNG_H_
#define GEACC_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace geacc {

// splitmix64 step; used for seeding and as a standalone hash/mixer.
uint64_t SplitMix64(uint64_t& state);

// xoshiro256** generator with portable distribution helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform on the full 64-bit range.
  uint64_t NextUint64();

  // Uniform on [0, 1).
  double NextDouble();

  // Uniform integer in the closed range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  // Standard normal via Box–Muller (deterministic, no cached spare).
  double NextGaussian();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Splits off an independent generator; deterministic function of the
  // parent's current state plus `stream`. Useful to decorrelate sub-tasks
  // without consuming parent draws in a size-dependent way.
  Rng Fork(uint64_t stream) const;

 private:
  uint64_t state_[4];
};

}  // namespace geacc

#endif  // GEACC_UTIL_RNG_H_
