// Validates a `geacc-bench v1` report produced by any bench's --json flag.
// Exit 0 iff the file parses and matches the schema; used by CI to smoke-
// test the report pipeline.
//
//   build/bench/validate_report out.json

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_report.h"
#include "obs/json.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s REPORT.json\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", argv[1]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  geacc::obs::JsonValue json;
  std::string error;
  if (!geacc::obs::JsonValue::Parse(buffer.str(), &json, &error)) {
    std::fprintf(stderr, "%s: JSON parse error: %s\n", argv[1], error.c_str());
    return 1;
  }
  if (!geacc::obs::ValidateBenchReport(json, &error)) {
    std::fprintf(stderr, "%s: schema violation: %s\n", argv[1], error.c_str());
    return 1;
  }

  geacc::obs::BenchReport report;
  if (!report.FromJson(json, &error)) {
    std::fprintf(stderr, "%s: %s\n", argv[1], error.c_str());
    return 1;
  }
  std::printf("%s: valid geacc-bench v%d report — bench '%s', rev %s, %zu "
              "point(s)\n",
              argv[1], geacc::obs::kBenchReportVersion, report.bench.c_str(),
              report.git_rev.c_str(), report.points.size());
  return 0;
}
