# Empty compiler generated dependencies file for ebsn_test.
# This may be replaced when dependencies are built.
