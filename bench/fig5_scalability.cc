// Fig. 5 a–b: scalability of Greedy-GEACC. |V| ∈ {100, 200, 500, 1000}
// as separate series, |U| swept up to 100K, max c_v = 200 (paper setting;
// other parameters Table III defaults).
//
// Expected shape (paper): time and memory grow near-linearly in the data
// size; Greedy handles |V| = 1000 × |U| = 100K comfortably.
//
// Default run uses |U| ∈ {10K, 50K, 100K} and |V| ∈ {100, 500, 1000};
// --paper enables the full grid (|U| ∈ {10K, 25K, 50K, 75K, 100K}).

#include <vector>

#include "bench/bench_common.h"
#include "gen/synthetic.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  geacc::bench::CommonFlags common;
  geacc::FlagSet flags;
  common.Register(flags);
  flags.Parse(argc, argv);
  geacc::bench::ReportContext report("fig5_scalability", flags, common);

  const std::vector<int> event_counts =
      common.paper ? std::vector<int>{100, 200, 500, 1000}
                   : std::vector<int>{100, 500, 1000};
  const std::vector<int> user_counts =
      common.paper ? std::vector<int>{10'000, 25'000, 50'000, 75'000, 100'000}
                   : std::vector<int>{10'000, 50'000, 100'000};

  for (const int num_events : event_counts) {
    geacc::SweepConfig config;
    config.title =
        geacc::StrFormat("Fig 5 a-b: Greedy scalability, |V| = %d",
                         num_events);
    config.solvers = common.SolverList({"greedy"});
    config.repetitions = common.reps;
    config.threads = common.threads;
    config.seed = static_cast<uint64_t>(common.seed);

    std::vector<geacc::SweepPoint> points;
    for (const int num_users : user_counts) {
      points.push_back(
          {std::to_string(num_users), [num_events, num_users](uint64_t seed) {
             geacc::SyntheticConfig synth;
             synth.num_events = num_events;
             synth.num_users = num_users;
             synth.event_capacity =
                 geacc::DistributionSpec::Uniform(1.0, 200.0);
             synth.seed = seed;
             return geacc::GenerateSynthetic(synth);
           }});
    }

    const geacc::SweepResult result = geacc::RunSweep(config, points);
    geacc::bench::EmitSweep(config, result, "|U|", common.csv);
    report.AddSweep(config, result);
  }
  report.Write();
  return 0;
}
