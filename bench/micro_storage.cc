// Microbenchmarks: disk-backed storage engine (src/storage/, DESIGN.md
// §14) — iDistance build cost, cursor advances, and query latency for the
// in-memory backend vs the paged backend, plus an explicitly out-of-core
// point whose key tree is several times the buffer-pool budget. Paged
// points carry the optional "storage" report section (buffer-pool traffic
// + file size) so CI can watch hit rates alongside wall time.

#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include <map>
#include <memory>
#include <string>

#include "core/attributes.h"
#include "core/similarity.h"
#include "index/idistance_paged.h"
#include "index/knn_index.h"
#include "obs/bench_report.h"
#include "util/rng.h"

namespace geacc {
namespace {

AttributeMatrix RandomPoints(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  AttributeMatrix points(n, dim);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      points.Set(i, j, rng.UniformReal(0.0, 10000.0));
    }
  }
  return points;
}

// In-cache comparison shape (key tree fits the default pool budget).
constexpr int kSmallN = 20000;
constexpr int kSmallDim = 6;

// Out-of-core shape: ~400k keys → a ~5 MiB key tree served through a
// 1 MiB pool, so every drain streams the file several times over budget.
constexpr int kBigN = 400000;
constexpr int kBigDim = 2;
constexpr uint64_t kBigBudget = 1ull << 20;

StorageOptions SmallStorage() { return {}; }

StorageOptions OutOfCoreStorage() {
  StorageOptions storage;
  storage.budget_bytes = kBigBudget;
  storage.page_size = 4096;
  return storage;
}

// Paged benchmarks deposit their pool traffic here (keyed by the
// registered benchmark name == report point label); the report hook
// attaches it as the point's "storage" section.
std::map<std::string, obs::StorageSummary>& StorageByLabel() {
  static auto* map = new std::map<std::string, obs::StorageSummary>();
  return *map;
}

obs::StorageSummary Summarize(const PagedIDistanceIndex& index,
                              const StorageOptions& options) {
  const storage::PoolStats stats = index.pool_stats();
  obs::StorageSummary summary;
  summary.budget_bytes = stats.budget_bytes;
  summary.page_size = options.page_size;
  summary.file_bytes = index.file_bytes();
  summary.hits = stats.hits;
  summary.faults = stats.faults;
  summary.evictions = stats.evictions;
  summary.flushes = stats.flushes;
  return summary;
}

std::unique_ptr<KnnIndex> Build(bool paged, const AttributeMatrix& points,
                                const SimilarityFunction& similarity,
                                const StorageOptions& storage) {
  return paged ? MakeIndex("idistance-paged", points, similarity, storage)
               : MakeIndex("idistance", points, similarity);
}

void RecordStorage(const std::string& label, const KnnIndex& index,
                   const StorageOptions& options) {
  const auto* paged = dynamic_cast<const PagedIDistanceIndex*>(&index);
  if (paged != nullptr) StorageByLabel()[label] = Summarize(*paged, options);
}

void BM_IndexBuild(benchmark::State& state, const std::string& label,
                   bool paged) {
  const AttributeMatrix points = RandomPoints(kSmallN, kSmallDim, 3);
  const EuclideanSimilarity sim(10000.0);
  const StorageOptions storage = SmallStorage();
  std::unique_ptr<KnnIndex> index;
  for (auto _ : state) {
    index = Build(paged, points, sim, storage);
    benchmark::DoNotOptimize(index->num_points());
  }
  if (index != nullptr) RecordStorage(label, *index, storage);
}

void BM_CursorAdvance32(benchmark::State& state, const std::string& label,
                        bool paged) {
  const AttributeMatrix points = RandomPoints(kSmallN, kSmallDim, 3);
  const AttributeMatrix queries = RandomPoints(16, kSmallDim, 4);
  const EuclideanSimilarity sim(10000.0);
  const StorageOptions storage = SmallStorage();
  const auto index = Build(paged, points, sim, storage);
  int q = 0;
  for (auto _ : state) {
    auto cursor = index->CreateCursor(queries.Row(q));
    q = (q + 1) % queries.rows();
    for (int i = 0; i < 32; ++i) {
      benchmark::DoNotOptimize(cursor->Next());
    }
  }
  RecordStorage(label, *index, storage);
}

void BM_CursorDrain(benchmark::State& state, const std::string& label,
                    bool paged) {
  const AttributeMatrix points = RandomPoints(kSmallN, kSmallDim, 3);
  const EuclideanSimilarity sim(10000.0);
  const StorageOptions storage = SmallStorage();
  const auto index = Build(paged, points, sim, storage);
  for (auto _ : state) {
    auto cursor = index->CreateCursor(points.Row(0));
    while (cursor->Next()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * kSmallN);
  RecordStorage(label, *index, storage);
}

// Key tree ≈ 5× the pool budget: every query streams leaf pages through
// the bounded frame set. The attached storage section is what CI's
// --require-storage validation inspects.
void BM_OutOfCoreQueryTop64(benchmark::State& state, const std::string& label) {
  const AttributeMatrix points = RandomPoints(kBigN, kBigDim, 5);
  const AttributeMatrix queries = RandomPoints(32, kBigDim, 6);
  const EuclideanSimilarity sim(10000.0);
  const StorageOptions storage = OutOfCoreStorage();
  const auto index = Build(/*paged=*/true, points, sim, storage);
  int q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Query(queries.Row(q), 64));
    q = (q + 1) % queries.rows();
  }
  RecordStorage(label, *index, storage);
}

void RegisterAll() {
  for (const bool paged : {false, true}) {
    const std::string tag = paged ? "paged" : "inmem";
    for (const auto& [base, fn] :
         std::map<std::string, void (*)(benchmark::State&, const std::string&,
                                        bool)>{
             {"BM_IndexBuild", &BM_IndexBuild},
             {"BM_CursorAdvance32", &BM_CursorAdvance32},
             {"BM_CursorDrain", &BM_CursorDrain}}) {
      const std::string label = base + "/" + tag;
      benchmark::RegisterBenchmark(
          label.c_str(),
          [fn, label, paged](benchmark::State& s) { fn(s, label, paged); });
    }
  }
  const std::string label = "BM_OutOfCoreQueryTop64/paged";
  benchmark::RegisterBenchmark(label.c_str(), [label](benchmark::State& s) {
    BM_OutOfCoreQueryTop64(s, label);
  });
}

const bool kRegistered = (RegisterAll(), true);

}  // namespace

// Report hook: attach the recorded pool traffic to paged points.
void AttachStorageSections(obs::BenchPoint& point) {
  const auto it = StorageByLabel().find(point.label);
  if (it == StorageByLabel().end()) return;
  point.has_storage = true;
  point.storage = it->second;
}

}  // namespace geacc

GEACC_MICRO_MAIN_WITH_HOOK("micro_storage", geacc::AttachStorageSections)
