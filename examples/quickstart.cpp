// Quickstart: the paper's Table I example end to end.
//
// Builds a tiny GEACC instance with InstanceBuilder (three sport events,
// five users, one conflicting pair), runs every solver, and prints the
// arrangements. The optimal MaxSum is 4.39; MinCostFlow-GEACC finds 4.13
// and Greedy-GEACC 4.28, exactly as in the paper's Examples 1–3.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>
#include <vector>

#include "algo/solvers.h"
#include "core/instance.h"

namespace {

void PrintArrangement(const geacc::Instance& instance,
                      const geacc::Solver& solver) {
  const geacc::SolveResult result = solver.Solve(instance);
  std::printf("%-12s MaxSum = %.2f  pairs =", solver.Name().c_str(),
              result.arrangement.MaxSum(instance));
  for (const auto& [v, u] : result.arrangement.SortedPairs()) {
    std::printf(" {v%d,u%d}", v + 1, u + 1);  // 1-based, as in the paper
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Attribute vectors are normally what defines interest; for this demo we
  // replicate Table I's interestingness values directly: event attributes
  // hold the table row, user attributes one-hot select a column, and the
  // inner-product similarity reads the entry.
  geacc::InstanceBuilder builder;
  builder.SetSimilarity(std::make_unique<geacc::DotSimilarity>());
  const auto one_hot = [](int i) {
    std::vector<double> attrs(5, 0.0);
    attrs[i] = 1.0;
    return attrs;
  };
  const geacc::EventId hiking =
      builder.AddEvent({0.93, 0.43, 0.84, 0.64, 0.65}, /*capacity=*/5);
  builder.AddEvent({0.00, 0.35, 0.19, 0.21, 0.40}, /*capacity=*/3);
  const geacc::EventId basketball =
      builder.AddEvent({0.86, 0.57, 0.78, 0.79, 0.68}, /*capacity=*/2);
  const int user_capacities[] = {3, 1, 1, 2, 3};
  for (int u = 0; u < 5; ++u) {
    builder.AddUser(one_hot(u), user_capacities[u]);
  }
  // The hiking trip and the basketball game overlap in time (Example 1):
  // no user can attend both.
  builder.AddConflict(hiking, basketball);
  const geacc::Instance instance = builder.Build();

  std::printf("GEACC quickstart — %s\n\n", instance.DebugString().c_str());
  for (const char* name :
       {"greedy", "mincostflow", "prune", "random-v", "random-u"}) {
    PrintArrangement(instance, *geacc::CreateSolver(name));
  }
  std::printf(
      "\nExpected from the paper: optimum 4.39 (prune), mincostflow 4.13, "
      "greedy 4.28.\n");
  return 0;
}
