#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/check.h"
#include "util/string_util.h"

namespace geacc {

void FlagSet::Add(const std::string& name, Type type, void* target,
                  const std::string& help) {
  GEACC_CHECK(target != nullptr);
  GEACC_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  Flag flag{name, type, target, help, ""};
  flag.default_value = Render(flag);
  flags_.push_back(std::move(flag));
}

void FlagSet::AddInt(const std::string& name, int64_t* target,
                     const std::string& help) {
  Add(name, Type::kInt64, target, help);
}

void FlagSet::AddInt(const std::string& name, int* target,
                     const std::string& help) {
  Add(name, Type::kInt, target, help);
}

void FlagSet::AddDouble(const std::string& name, double* target,
                        const std::string& help) {
  Add(name, Type::kDouble, target, help);
}

void FlagSet::AddBool(const std::string& name, bool* target,
                      const std::string& help) {
  Add(name, Type::kBool, target, help);
}

void FlagSet::AddString(const std::string& name, std::string* target,
                        const std::string& help) {
  Add(name, Type::kString, target, help);
}

FlagSet::Flag* FlagSet::Find(const std::string& name) {
  for (Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

bool FlagSet::Assign(Flag& flag, const std::string& value) {
  switch (flag.type) {
    case Type::kInt64: {
      const auto parsed = ParseInt(value);
      if (!parsed) return false;
      *static_cast<int64_t*>(flag.target) = *parsed;
      return true;
    }
    case Type::kInt: {
      const auto parsed = ParseInt(value);
      if (!parsed) return false;
      *static_cast<int*>(flag.target) = static_cast<int>(*parsed);
      return true;
    }
    case Type::kDouble: {
      const auto parsed = ParseDouble(value);
      if (!parsed) return false;
      *static_cast<double*>(flag.target) = *parsed;
      return true;
    }
    case Type::kBool: {
      const auto parsed = ParseBool(value);
      if (!parsed) return false;
      *static_cast<bool*>(flag.target) = *parsed;
      return true;
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return true;
  }
  return false;
}

std::string FlagSet::Render(const Flag& flag) {
  switch (flag.type) {
    case Type::kInt64:
      return StrFormat("%lld", (long long)*static_cast<int64_t*>(flag.target));
    case Type::kInt:
      return StrFormat("%d", *static_cast<int*>(flag.target));
    case Type::kDouble:
      return StrFormat("%g", *static_cast<double*>(flag.target));
    case Type::kBool:
      return *static_cast<bool*>(flag.target) ? "true" : "false";
    case Type::kString:
      return *static_cast<std::string*>(flag.target);
  }
  return "";
}

std::vector<std::pair<std::string, std::string>> FlagSet::Values() const {
  std::vector<std::pair<std::string, std::string>> values;
  values.reserve(flags_.size());
  for (const Flag& flag : flags_) {
    values.emplace_back(flag.name, Render(flag));
  }
  return values;
}

std::string FlagSet::Usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const Flag& flag : flags_) {
    out += StrFormat("  --%-24s %s (default: %s)\n", flag.name.c_str(),
                     flag.help.c_str(), flag.default_value.c_str());
  }
  return out;
}

void FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg == "help") {
      std::fputs(Usage(argv[0]).c_str(), stdout);
      std::exit(0);
    }
    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (const size_t eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    Flag* flag = Find(name);
    if (flag == nullptr) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                   Usage(argv[0]).c_str());
      std::exit(1);
    }
    if (!has_value) {
      if (flag->type == Type::kBool) {
        value = "true";  // bare --flag means true
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
        std::exit(1);
      }
    }
    if (!Assign(*flag, value)) {
      std::fprintf(stderr, "bad value '%s' for flag --%s\n", value.c_str(),
                   name.c_str());
      std::exit(1);
    }
  }
}

}  // namespace geacc
