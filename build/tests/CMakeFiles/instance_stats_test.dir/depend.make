# Empty dependencies file for instance_stats_test.
# This may be replaced when dependencies are built.
