#include "gen/instance_stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/string_util.h"

namespace geacc {

SimilarityStats ComputeSimilarityStats(const Instance& instance) {
  SimilarityStats stats;
  const int num_events = instance.num_events();
  const int num_users = instance.num_users();
  stats.pair_count = static_cast<int64_t>(num_events) * num_users;
  if (stats.pair_count == 0) return stats;

  std::vector<double> values;
  values.reserve(static_cast<size_t>(stats.pair_count));
  std::vector<double> user_best(num_users, 0.0);
  double sum = 0.0, sum_sq = 0.0;
  stats.min = 1.0;
  stats.max = 0.0;
  for (EventId v = 0; v < num_events; ++v) {
    double event_best = 0.0;
    for (UserId u = 0; u < num_users; ++u) {
      const double sim = instance.Similarity(v, u);
      values.push_back(sim);
      sum += sim;
      sum_sq += sim * sim;
      stats.min = std::min(stats.min, sim);
      stats.max = std::max(stats.max, sim);
      if (sim == 0.0) ++stats.zero_pairs;
      event_best = std::max(event_best, sim);
      user_best[u] = std::max(user_best[u], sim);
      const int bin = std::min(SimilarityStats::kHistogramBins - 1,
                               static_cast<int>(sim *
                                                SimilarityStats::kHistogramBins));
      ++stats.histogram[bin];
    }
    stats.mean_event_best += event_best;
  }
  stats.mean_event_best /= num_events;
  for (const double best : user_best) stats.mean_user_best += best;
  stats.mean_user_best /= num_users;

  const double n = static_cast<double>(stats.pair_count);
  stats.mean = sum / n;
  stats.stddev = std::sqrt(std::max(0.0, sum_sq / n - stats.mean * stats.mean));

  std::sort(values.begin(), values.end());
  auto quantile = [&](double q) {
    const auto index = static_cast<size_t>(q * (values.size() - 1));
    return values[index];
  };
  stats.p25 = quantile(0.25);
  stats.p50 = quantile(0.50);
  stats.p75 = quantile(0.75);
  stats.p95 = quantile(0.95);
  return stats;
}

std::string SimilarityStats::ToString() const {
  std::string out = StrFormat(
      "pairs=%lld zero=%lld mean=%.4f sd=%.4f min=%.4f max=%.4f\n"
      "quantiles p25=%.4f p50=%.4f p75=%.4f p95=%.4f\n"
      "best-match means: per-user=%.4f per-event=%.4f\n",
      (long long)pair_count, (long long)zero_pairs, mean, stddev, min, max,
      p25, p50, p75, p95, mean_user_best, mean_event_best);
  int64_t tallest = 1;
  for (const int64_t count : histogram) tallest = std::max(tallest, count);
  for (int bin = 0; bin < kHistogramBins; ++bin) {
    const int width =
        static_cast<int>(40.0 * histogram[bin] / static_cast<double>(tallest));
    out += StrFormat("[%.2f,%.2f) %-40s %lld\n",
                     bin / static_cast<double>(kHistogramBins),
                     (bin + 1) / static_cast<double>(kHistogramBins),
                     std::string(width, '#').c_str(),
                     (long long)histogram[bin]);
  }
  return out;
}

}  // namespace geacc
