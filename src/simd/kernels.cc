// Level-independent batch drivers: loop the per-block reducers over a
// blocked buffer and run the similarity "finishers" (sqrt / clamp / exp /
// zero-norm blend) in portable code. Finishers are per-element IEEE
// operations, so they are bit-identical at every dispatch level; only the
// reducers differ per level, and only in kFast mode (see kernels.h).

#include "simd/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.h"

namespace geacc::simd {

namespace {

// Runs `fn(query, block, dim, out8)` over every block, routing the
// padded tail block through a stack buffer so out[rows..) is never
// touched.
template <typename BlockFn>
void ForEachBlock(BlockFn fn, const double* query, const double* blocked,
                  int dim, int64_t rows, double* out) {
  const int64_t num_blocks = NumBlocks(rows);
  for (int64_t b = 0; b < num_blocks; ++b) {
    const double* block =
        blocked + b * static_cast<int64_t>(dim) * kBlockRows;
    const int64_t base = b * kBlockRows;
    const int64_t live = std::min<int64_t>(kBlockRows, rows - base);
    if (live == kBlockRows) {
      fn(query, block, dim, out + base);
    } else {
      alignas(kBlockAlignment) double tmp[kBlockRows];
      fn(query, block, dim, tmp);
      std::memcpy(out + base, tmp, live * sizeof(double));
    }
  }
}

}  // namespace

const KernelTable& GetKernels(Level level) {
  switch (level) {
    case Level::kScalar:
      return internal::ScalarKernels();
    case Level::kAvx2:
      GEACC_CHECK(CpuSupportsAvx2())
          << "AVX2 kernels requested on a binary/CPU without AVX2";
      return internal::Avx2Kernels();
  }
  GEACC_CHECK(false) << "unknown simd level " << static_cast<int>(level);
  return internal::ScalarKernels();  // unreachable
}

void BuildBlocked(const double* data, int64_t rows, int dim,
                  double* blocked) {
  const int64_t num_blocks = NumBlocks(rows);
  for (int64_t b = 0; b < num_blocks; ++b) {
    double* dst = blocked + b * static_cast<int64_t>(dim) * kBlockRows;
    const int64_t base = b * kBlockRows;
    const int64_t live = std::min<int64_t>(kBlockRows, rows - base);
    for (int j = 0; j < dim; ++j) {
      double* lane = dst + static_cast<int64_t>(j) * kBlockRows;
      for (int64_t r = 0; r < live; ++r) lane[r] = data[(base + r) * dim + j];
      for (int64_t r = live; r < kBlockRows; ++r) lane[r] = 0.0;
    }
  }
}

void BatchSquaredDistance(Level level, FpMode fp, const double* query,
                          const double* blocked, int dim, int64_t rows,
                          double* out) {
  const KernelTable& k = GetKernels(level);
  ForEachBlock(fp == FpMode::kFast ? k.squared_distance_fma
                                   : k.squared_distance,
               query, blocked, dim, rows, out);
}

void BatchEuclideanSimilarity(Level level, FpMode fp, double max_attribute,
                              const double* query, const double* blocked,
                              int dim, int64_t rows, double* out) {
  if (dim == 0) {
    std::fill(out, out + rows, 1.0);
    return;
  }
  BatchSquaredDistance(level, fp, query, blocked, dim, rows, out);
  const double max_dist = max_attribute * std::sqrt(static_cast<double>(dim));
  for (int64_t i = 0; i < rows; ++i) {
    const double dist = std::sqrt(out[i]);
    out[i] = std::clamp(1.0 - dist / max_dist, 0.0, 1.0);
  }
}

void BatchCosineSimilarity(Level level, FpMode fp, const double* query,
                           const double* blocked, int dim, int64_t rows,
                           double* out) {
  // The query norm is loop-invariant across the batch; accumulate it once
  // in the same ascending-j order as the per-pair loop's norm_a.
  double norm_q = 0.0;
  for (int j = 0; j < dim; ++j) norm_q += query[j] * query[j];

  const KernelTable& k = GetKernels(level);
  const auto fn = fp == FpMode::kFast ? k.dot_norm_fma : k.dot_norm;
  const int64_t num_blocks = NumBlocks(rows);
  for (int64_t b = 0; b < num_blocks; ++b) {
    const double* block = blocked + b * static_cast<int64_t>(dim) * kBlockRows;
    const int64_t base = b * kBlockRows;
    const int64_t live = std::min<int64_t>(kBlockRows, rows - base);
    alignas(kBlockAlignment) double dot[kBlockRows];
    alignas(kBlockAlignment) double norm[kBlockRows];
    fn(query, block, dim, dot, norm);
    for (int64_t r = 0; r < live; ++r) {
      out[base + r] =
          (norm_q == 0.0 || norm[r] == 0.0)
              ? 0.0
              : std::clamp(dot[r] / std::sqrt(norm_q * norm[r]), 0.0, 1.0);
    }
  }
}

void BatchRbfSimilarity(Level level, FpMode fp, double inv_two_bw_sq,
                        const double* query, const double* blocked, int dim,
                        int64_t rows, double* out) {
  BatchSquaredDistance(level, fp, query, blocked, dim, rows, out);
  for (int64_t i = 0; i < rows; ++i) {
    out[i] = std::exp(-out[i] * inv_two_bw_sq);
  }
}

void BatchDotSimilarity(Level level, FpMode fp, const double* query,
                        const double* blocked, int dim, int64_t rows,
                        double* out) {
  const KernelTable& k = GetKernels(level);
  ForEachBlock(fp == FpMode::kFast ? k.dot_fma : k.dot, query, blocked, dim,
               rows, out);
  for (int64_t i = 0; i < rows; ++i) out[i] = std::clamp(out[i], 0.0, 1.0);
}

void BatchVaLowerBound(Level level, const double* cell_table, int cells,
                       const uint8_t* sig_blocked, int dim, int64_t rows,
                       double* out) {
  const KernelTable& k = GetKernels(level);
  const int64_t num_blocks = NumBlocks(rows);
  for (int64_t b = 0; b < num_blocks; ++b) {
    const uint8_t* block =
        sig_blocked + b * static_cast<int64_t>(dim) * kBlockRows;
    const int64_t base = b * kBlockRows;
    const int64_t live = std::min<int64_t>(kBlockRows, rows - base);
    if (live == kBlockRows) {
      k.va_lower_bound(cell_table, cells, block, dim, out + base);
    } else {
      alignas(kBlockAlignment) double tmp[kBlockRows];
      k.va_lower_bound(cell_table, cells, block, dim, tmp);
      std::memcpy(out + base, tmp, live * sizeof(double));
    }
  }
}

}  // namespace geacc::simd
