// Deterministic mutation-trace generator — the dynamic-workload
// counterpart of gen/synthetic.
//
// Models an EBSN's churn as a mixture of processes over a living
// timetable: user arrivals and departures, events being announced and
// cancelled, conflict churn, and capacity adjustments. Events carry a
// ScheduledEvent (start/end/venue, gen/schedule.h); when a new event is
// announced, the trace emits the AddConflict mutations its timetable
// implies against every live event, so replayed conflict structure stays
// physically consistent. Extra "churn" conflicts (venue moves, speaker
// overlaps) are sampled uniformly over live non-conflicting pairs.
//
// The generator replays its own mutations through a DynamicInstance while
// generating, so every emitted mutation is valid at its epoch (ids alive,
// capacities ≥ 1, conflicts between active events). Same config + seed ⇒
// bit-identical trace.

#ifndef GEACC_GEN_TRACE_GEN_H_
#define GEACC_GEN_TRACE_GEN_H_

#include <cstdint>

#include "dyn/mutation.h"

namespace geacc {

struct TraceGenConfig {
  // Epoch-0 instance.
  int initial_events = 50;
  int initial_users = 500;
  int dim = 8;
  double max_attribute = 100.0;  // T; attributes ~ Uniform[0, T]
  int max_event_capacity = 20;   // c_v ~ Uniform[1, max]
  int max_user_capacity = 4;     // c_u ~ Uniform[1, max]

  // Mutation count; the trace may run a few past this so an announced
  // event's implied conflicts are never truncated.
  int num_mutations = 1000;

  // Mixture weights (any non-negative scale; renormalized internally).
  // Kinds that are momentarily inapplicable — removals from an empty
  // side, conflict churn with < 2 live events — are skipped that step.
  double w_add_user = 0.40;
  double w_remove_user = 0.20;
  double w_add_event = 0.10;
  double w_remove_event = 0.05;
  double w_add_conflict = 0.10;
  double w_set_event_capacity = 0.10;
  double w_set_user_capacity = 0.05;

  // Timetable geometry for event conflicts (gen/schedule.h).
  double horizon_hours = 48.0;
  double min_duration_hours = 1.0;
  double max_duration_hours = 3.0;
  double city_km = 30.0;
  double speed_kmph = 30.0;

  uint64_t seed = 42;
};

MutationTrace GenerateTrace(const TraceGenConfig& config);

}  // namespace geacc

#endif  // GEACC_GEN_TRACE_GEN_H_
