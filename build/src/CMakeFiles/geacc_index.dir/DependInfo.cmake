
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/idistance_index.cc" "src/CMakeFiles/geacc_index.dir/index/idistance_index.cc.o" "gcc" "src/CMakeFiles/geacc_index.dir/index/idistance_index.cc.o.d"
  "/root/repo/src/index/kd_tree_index.cc" "src/CMakeFiles/geacc_index.dir/index/kd_tree_index.cc.o" "gcc" "src/CMakeFiles/geacc_index.dir/index/kd_tree_index.cc.o.d"
  "/root/repo/src/index/knn_index.cc" "src/CMakeFiles/geacc_index.dir/index/knn_index.cc.o" "gcc" "src/CMakeFiles/geacc_index.dir/index/knn_index.cc.o.d"
  "/root/repo/src/index/linear_scan_index.cc" "src/CMakeFiles/geacc_index.dir/index/linear_scan_index.cc.o" "gcc" "src/CMakeFiles/geacc_index.dir/index/linear_scan_index.cc.o.d"
  "/root/repo/src/index/va_file_index.cc" "src/CMakeFiles/geacc_index.dir/index/va_file_index.cc.o" "gcc" "src/CMakeFiles/geacc_index.dir/index/va_file_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geacc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geacc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
