#include "svc/paged_checkpoint.h"

#include <algorithm>
#include <cinttypes>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/stats.h"
#include "util/string_util.h"

namespace geacc::svc {
namespace {

void AppendAttributeRow(std::string* out, const AttributeMatrix& matrix,
                        int row) {
  const double* values = matrix.Row(row);
  for (int j = 0; j < matrix.dim(); ++j) {
    out->append(StrFormat(" %.17g", values[j]));
  }
}

// Line-oriented decoder state: strict, position-independent errors.
struct Decoder {
  std::istringstream in;
  int line_number = 0;
  std::string* error;

  Decoder(const std::string& text, std::string* error)
      : in(text), error(error) {}

  bool Fail(const std::string& message) {
    if (error != nullptr) {
      *error = StrFormat("paged checkpoint line %d: %s", line_number,
                         message.c_str());
    }
    return false;
  }

  bool NextTokens(std::vector<std::string>* tokens) {
    std::string line;
    if (!std::getline(in, line)) return Fail("unexpected end of state");
    ++line_number;
    tokens->clear();
    for (std::string& token : Split(line, ' ')) {
      if (!token.empty()) tokens->push_back(std::move(token));
    }
    return true;
  }
};

bool ParseIdList(Decoder& decoder, const std::vector<std::string>& tokens,
                 const char* keyword, std::vector<int32_t>* out) {
  if (tokens.size() < 2 || tokens[0] != keyword) {
    return decoder.Fail(StrFormat("expected '%s <count> <ids...>'", keyword));
  }
  const auto count = ParseInt(tokens[1]);
  if (!count || *count < 0 ||
      tokens.size() != static_cast<size_t>(*count) + 2) {
    return decoder.Fail(StrFormat("bad '%s' count", keyword));
  }
  out->resize(*count);
  for (int64_t i = 0; i < *count; ++i) {
    const auto id = ParseInt(tokens[2 + i]);
    if (!id) return decoder.Fail("bad id");
    (*out)[i] = static_cast<int32_t>(*id);
  }
  return true;
}

bool ParseHexBits(const std::string& token, uint64_t* out) {
  if (token.empty() || token.size() > 16) return false;
  uint64_t value = 0;
  for (const char c : token) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}

}  // namespace

std::string EncodeServiceState(const ServiceState& state) {
  const DynamicInstance::SlotState& slot = state.slot;
  std::string out;
  out.reserve(256 +
              static_cast<size_t>(slot.event_attributes.rows() +
                                  slot.user_attributes.rows()) *
                  (static_cast<size_t>(slot.dim) + 2) * 26);
  out += "geacc-svc-state v1\n";
  out += StrFormat("similarity %s %.17g\n", state.similarity_name.c_str(),
                   state.similarity_param);
  out += StrFormat("dim %d\n", slot.dim);
  out += StrFormat("epoch %lld\n", static_cast<long long>(slot.epoch));
  out += StrFormat("event_slots %d\n", slot.event_attributes.rows());
  for (int v = 0; v < slot.event_attributes.rows(); ++v) {
    out += StrFormat("event %d %d", slot.event_capacities[v],
                     static_cast<int>(slot.event_active[v]));
    AppendAttributeRow(&out, slot.event_attributes, v);
    out += "\n";
  }
  out += StrFormat("user_slots %d\n", slot.user_attributes.rows());
  for (int u = 0; u < slot.user_attributes.rows(); ++u) {
    out += StrFormat("user %d %d", slot.user_capacities[u],
                     static_cast<int>(slot.user_active[u]));
    AppendAttributeRow(&out, slot.user_attributes, u);
    out += "\n";
  }
  out += StrFormat("conflicts %d\n", static_cast<int>(slot.conflicts.size()));
  for (const auto& [a, b] : slot.conflicts) {
    out += StrFormat("conflict %d %d\n", a, b);
  }
  // Time-slot annotations are emitted only when present (ExportSlotState
  // leaves both vectors empty until the first slot mutation), so pre-slot
  // checkpoints stay byte-identical to the original format.
  if (!slot.event_time_slots.empty() || !slot.user_availability.empty()) {
    out += StrFormat("event_time_slots %d",
                     static_cast<int>(slot.event_time_slots.size()));
    for (const SlotId s : slot.event_time_slots) {
      out += StrFormat(" %d", s);
    }
    out += "\n";
    out += StrFormat("user_availability %d",
                     static_cast<int>(slot.user_availability.size()));
    for (const int64_t mask : slot.user_availability) {
      out += StrFormat(" %lld", static_cast<long long>(mask));
    }
    out += "\n";
  }
  const IncrementalArranger::ArrangerState& arranger = state.arranger;
  out += "arranger\n";
  for (const std::vector<EventId>& events : arranger.user_events) {
    out += StrFormat("ue %d", static_cast<int>(events.size()));
    for (const EventId v : events) out += StrFormat(" %d", v);
    out += "\n";
  }
  for (const std::vector<UserId>& users : arranger.event_users) {
    out += StrFormat("eu %d", static_cast<int>(users.size()));
    for (const UserId u : users) out += StrFormat(" %d", u);
    out += "\n";
  }
  out += StrFormat("max_sum_bits %016" PRIx64 "\n", arranger.max_sum_bits);
  out += StrFormat("drift_bits %016" PRIx64 "\n", arranger.drift_bits);
  out += "end\n";
  return out;
}

bool DecodeServiceState(const std::string& text, ServiceState* state,
                        std::string* error) {
  Decoder decoder(text, error);
  std::vector<std::string> tokens;

  if (!decoder.NextTokens(&tokens)) return false;
  if (tokens.size() != 2 || tokens[0] != "geacc-svc-state" ||
      tokens[1] != "v1") {
    return decoder.Fail("expected header 'geacc-svc-state v1'");
  }
  if (!decoder.NextTokens(&tokens)) return false;
  if (tokens.size() != 3 || tokens[0] != "similarity") {
    return decoder.Fail("expected 'similarity <name> <param>'");
  }
  state->similarity_name = tokens[1];
  const auto param = ParseDouble(tokens[2]);
  if (!param) return decoder.Fail("bad similarity parameter");
  state->similarity_param = *param;

  DynamicInstance::SlotState& slot = state->slot;
  if (!decoder.NextTokens(&tokens)) return false;
  if (tokens.size() != 2 || tokens[0] != "dim") {
    return decoder.Fail("expected 'dim <d>'");
  }
  const auto dim = ParseInt(tokens[1]);
  if (!dim || *dim < 0) return decoder.Fail("bad dimension");
  slot.dim = static_cast<int>(*dim);

  if (!decoder.NextTokens(&tokens)) return false;
  if (tokens.size() != 2 || tokens[0] != "epoch") {
    return decoder.Fail("expected 'epoch <e>'");
  }
  const auto epoch = ParseInt(tokens[1]);
  if (!epoch || *epoch < 0) return decoder.Fail("bad epoch");
  slot.epoch = *epoch;

  const auto parse_entities =
      [&](const char* plural, const char* singular, AttributeMatrix* matrix,
          std::vector<int>* capacities, std::vector<uint8_t>* active) {
        if (!decoder.NextTokens(&tokens)) return false;
        if (tokens.size() != 2 || tokens[0] != plural) {
          return decoder.Fail(StrFormat("expected '%s <count>'", plural));
        }
        const auto count = ParseInt(tokens[1]);
        if (!count || *count < 0) return decoder.Fail("bad slot count");
        *matrix = AttributeMatrix(0, slot.dim);
        capacities->clear();
        active->clear();
        std::vector<double> row(slot.dim);
        for (int64_t i = 0; i < *count; ++i) {
          if (!decoder.NextTokens(&tokens)) return false;
          if (tokens.size() != static_cast<size_t>(slot.dim) + 3 ||
              tokens[0] != singular) {
            return decoder.Fail(
                StrFormat("expected '%s <cap> <active> <attrs...>'",
                          singular));
          }
          const auto capacity = ParseInt(tokens[1]);
          const auto is_active = ParseInt(tokens[2]);
          if (!capacity || !is_active ||
              (*is_active != 0 && *is_active != 1)) {
            return decoder.Fail("bad capacity/active flag");
          }
          for (int j = 0; j < slot.dim; ++j) {
            const auto value = ParseDouble(tokens[3 + j]);
            if (!value) return decoder.Fail("bad attribute");
            row[j] = *value;
          }
          matrix->AppendRow(row);
          capacities->push_back(static_cast<int>(*capacity));
          active->push_back(static_cast<uint8_t>(*is_active));
        }
        return true;
      };
  if (!parse_entities("event_slots", "event", &slot.event_attributes,
                      &slot.event_capacities, &slot.event_active)) {
    return false;
  }
  if (!parse_entities("user_slots", "user", &slot.user_attributes,
                      &slot.user_capacities, &slot.user_active)) {
    return false;
  }

  if (!decoder.NextTokens(&tokens)) return false;
  if (tokens.size() != 2 || tokens[0] != "conflicts") {
    return decoder.Fail("expected 'conflicts <count>'");
  }
  const auto conflict_count = ParseInt(tokens[1]);
  if (!conflict_count || *conflict_count < 0) {
    return decoder.Fail("bad conflict count");
  }
  slot.conflicts.clear();
  slot.conflicts.reserve(*conflict_count);
  for (int64_t i = 0; i < *conflict_count; ++i) {
    if (!decoder.NextTokens(&tokens)) return false;
    if (tokens.size() != 3 || tokens[0] != "conflict") {
      return decoder.Fail("expected 'conflict <a> <b>'");
    }
    const auto a = ParseInt(tokens[1]);
    const auto b = ParseInt(tokens[2]);
    if (!a || !b) return decoder.Fail("bad conflict pair");
    slot.conflicts.emplace_back(static_cast<EventId>(*a),
                                static_cast<EventId>(*b));
  }

  if (!decoder.NextTokens(&tokens)) return false;
  slot.event_time_slots.clear();
  slot.user_availability.clear();
  if (!tokens.empty() && tokens[0] == "event_time_slots") {
    const auto count = tokens.size() >= 2 ? ParseInt(tokens[1]) : std::nullopt;
    if (!count || *count < 0 ||
        tokens.size() != static_cast<size_t>(*count) + 2) {
      return decoder.Fail("bad 'event_time_slots' count");
    }
    slot.event_time_slots.reserve(*count);
    for (int64_t i = 0; i < *count; ++i) {
      const auto s = ParseInt(tokens[2 + i]);
      if (!s) return decoder.Fail("bad event time slot");
      slot.event_time_slots.push_back(static_cast<SlotId>(*s));
    }
    if (!decoder.NextTokens(&tokens)) return false;
    const auto users = tokens.size() >= 2 && tokens[0] == "user_availability"
                           ? ParseInt(tokens[1])
                           : std::nullopt;
    if (!users || *users < 0 ||
        tokens.size() != static_cast<size_t>(*users) + 2) {
      return decoder.Fail("expected 'user_availability <count> <masks...>'");
    }
    slot.user_availability.reserve(*users);
    for (int64_t i = 0; i < *users; ++i) {
      const auto mask = ParseInt(tokens[2 + i]);
      if (!mask) return decoder.Fail("bad availability mask");
      slot.user_availability.push_back(*mask);
    }
    if (!decoder.NextTokens(&tokens)) return false;
  }
  if (tokens.size() != 1 || tokens[0] != "arranger") {
    return decoder.Fail("expected 'arranger'");
  }
  IncrementalArranger::ArrangerState& arranger = state->arranger;
  arranger.user_events.resize(slot.user_attributes.rows());
  for (auto& events : arranger.user_events) {
    if (!decoder.NextTokens(&tokens)) return false;
    if (!ParseIdList(decoder, tokens, "ue", &events)) return false;
  }
  arranger.event_users.resize(slot.event_attributes.rows());
  for (auto& users : arranger.event_users) {
    if (!decoder.NextTokens(&tokens)) return false;
    if (!ParseIdList(decoder, tokens, "eu", &users)) return false;
  }

  if (!decoder.NextTokens(&tokens)) return false;
  if (tokens.size() != 2 || tokens[0] != "max_sum_bits" ||
      !ParseHexBits(tokens[1], &arranger.max_sum_bits)) {
    return decoder.Fail("expected 'max_sum_bits <hex>'");
  }
  if (!decoder.NextTokens(&tokens)) return false;
  if (tokens.size() != 2 || tokens[0] != "drift_bits" ||
      !ParseHexBits(tokens[1], &arranger.drift_bits)) {
    return decoder.Fail("expected 'drift_bits <hex>'");
  }
  if (!decoder.NextTokens(&tokens)) return false;
  if (tokens.size() != 1 || tokens[0] != "end") {
    return decoder.Fail("expected 'end'");
  }
  return true;
}

std::unique_ptr<PagedCheckpointStore> PagedCheckpointStore::Open(
    const std::string& path, uint32_t page_size, std::string* error) {
  std::string open_error;
  std::unique_ptr<storage::PageFile> file =
      storage::PageFile::Open(path, &open_error);
  if (file != nullptr && file->page_size() != page_size) {
    // Page-size change: start over (the WAL still has everything).
    file.reset();
  }
  if (file == nullptr) {
    file = storage::PageFile::Create(path, page_size, error);
    if (file == nullptr) return nullptr;
  }
  return std::unique_ptr<PagedCheckpointStore>(
      new PagedCheckpointStore(std::move(file)));
}

bool PagedCheckpointStore::Write(const ServiceState& state,
                                 int64_t applied_mutations, WriteStats* stats,
                                 std::string* error) {
  GEACC_PHASE_TIMER("svc.ckpt.write");
  const std::string encoded = EncodeServiceState(state);
  const uint32_t capacity = file_->payload_capacity();
  const uint32_t pages =
      static_cast<uint32_t>((encoded.size() + capacity - 1) / capacity);
  WriteStats local;
  local.pages_total = static_cast<int>(pages);
  while (file_->allocated_pages() < pages) file_->Allocate();
  const uint32_t committed = file_->meta().data_pages;
  for (uint32_t i = 0; i < pages; ++i) {
    const size_t offset = static_cast<size_t>(i) * capacity;
    const uint32_t chunk = static_cast<uint32_t>(
        std::min<size_t>(capacity, encoded.size() - offset));
    const uint8_t* payload =
        reinterpret_cast<const uint8_t*>(encoded.data()) + offset;
    if (i < committed) {
      // Dirty-page diff: skip the write when the stored checksum already
      // matches this exact content (PageChecksum is content-determined).
      uint64_t stored = 0;
      if (file_->ReadPageChecksum(i, &stored, error) &&
          stored == storage::PageChecksum(i, storage::kPageTypeCheckpoint,
                                          payload, chunk)) {
        continue;
      }
    }
    if (!file_->WritePage(i, storage::kPageTypeCheckpoint, payload, chunk,
                          error)) {
      return false;
    }
    ++local.pages_written;
  }
  storage::PageFile::Meta meta;
  meta.data_pages = std::max(pages, file_->allocated_pages());
  meta.state_bytes = encoded.size();
  meta.state_checksum =
      storage::Fnv1a64(encoded.data(), encoded.size());
  meta.applied_seq = applied_mutations;
  if (!file_->Commit(meta, error)) return false;
  if (stats != nullptr) *stats = local;
  GEACC_STATS_ADD("svc.ckpt.writes", 1);
  GEACC_STATS_ADD("svc.ckpt.pages_written", local.pages_written);
  GEACC_STATS_ADD("svc.ckpt.pages_clean",
                  local.pages_total - local.pages_written);
  return true;
}

bool PagedCheckpointStore::Read(ServiceState* state,
                                int64_t* applied_mutations,
                                std::string* error) {
  const storage::PageFile::Meta& meta = file_->meta();
  if (meta.state_bytes == 0) {
    if (error != nullptr) *error = "checkpoint store is empty";
    return false;
  }
  const uint32_t capacity = file_->payload_capacity();
  const uint32_t pages = static_cast<uint32_t>(
      (meta.state_bytes + capacity - 1) / capacity);
  if (pages > meta.data_pages) {
    if (error != nullptr) *error = "checkpoint meta references missing pages";
    return false;
  }
  std::string encoded;
  encoded.reserve(meta.state_bytes);
  std::vector<uint8_t> payload(capacity);
  for (uint32_t i = 0; i < pages; ++i) {
    uint16_t type = 0;
    uint32_t payload_bytes = 0;
    if (!file_->ReadPage(i, payload.data(), &type, &payload_bytes, error)) {
      return false;
    }
    if (type != storage::kPageTypeCheckpoint) {
      if (error != nullptr) *error = "unexpected page type in checkpoint";
      return false;
    }
    encoded.append(reinterpret_cast<const char*>(payload.data()),
                   payload_bytes);
  }
  if (encoded.size() != meta.state_bytes) {
    if (error != nullptr) *error = "checkpoint byte count mismatch";
    return false;
  }
  // The decisive torn-state check: in-place dirty-page rewrites can leave
  // individually-valid pages from two different checkpoints; only the
  // whole-state checksum proves these pages belong together.
  if (storage::Fnv1a64(encoded.data(), encoded.size()) !=
      meta.state_checksum) {
    if (error != nullptr) {
      *error = "checkpoint state checksum mismatch (torn write)";
    }
    return false;
  }
  if (!DecodeServiceState(encoded, state, error)) return false;
  if (applied_mutations != nullptr) *applied_mutations = meta.applied_seq;
  GEACC_STATS_ADD("svc.ckpt.reads", 1);
  return true;
}

}  // namespace geacc::svc
