// Fig. 3, column 2: MaxSum / time / memory vs |U| ∈ {100, 200, 500, 1000,
// 2000, 5000}; all other parameters Table III defaults (|V| = 100).
//
// Expected shape (paper): same patterns as varying |V| — MaxSum grows and
// saturates (event capacity binds), Greedy dominates on every metric.

#include <vector>

#include "bench/bench_common.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  geacc::bench::CommonFlags common;
  geacc::FlagSet flags;
  common.Register(flags);
  flags.Parse(argc, argv);
  geacc::bench::ReportContext report("fig3_cardinality_u", flags, common);

  geacc::SweepConfig config;
  config.title = "Fig 3 col 2: varying |U|";
  config.solvers =
      common.SolverList({"greedy", "mincostflow", "random-v", "random-u"});
  config.repetitions = common.reps;
  config.threads = common.threads;
  config.audit = common.selfcheck;
  common.ApplySolverOptions(&config.solver_options);
  config.seed = static_cast<uint64_t>(common.seed);

  std::vector<geacc::SweepPoint> points;
  for (const int num_users : {100, 200, 500, 1000, 2000, 5000}) {
    points.push_back({std::to_string(num_users), [num_users](uint64_t seed) {
                        geacc::SyntheticConfig synth;
                        synth.num_users = num_users;
                        synth.seed = seed;
                        return geacc::GenerateSynthetic(synth);
                      }});
  }

  const geacc::SweepResult result = geacc::RunSweep(config, points);
  geacc::bench::EmitSweep(config, result, "|U|", common.csv);
  report.AddSweep(config, result);
  report.Write();
  return 0;
}
