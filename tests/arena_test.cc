// Tests for the scratch arena (src/util/arena.h): alignment, watermark
// discipline, chunk reuse across Reset, ScratchScope nesting, and a
// randomized Mark/alloc/Rewind fuzz with pattern verification.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/arena.h"
#include "util/rng.h"

namespace geacc {
namespace {

bool IsAligned(const void* p) {
  return reinterpret_cast<uintptr_t>(p) % Arena::kAlignment == 0;
}

TEST(Arena, EveryAllocationIsCacheLineAligned) {
  Arena arena;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto bytes = static_cast<std::size_t>(rng.UniformInt(1, 4096));
    EXPECT_TRUE(IsAligned(arena.AllocBytes(bytes))) << "alloc " << i;
  }
  // Typed allocations inherit the same alignment (what the kernels need).
  EXPECT_TRUE(IsAligned(arena.Alloc<double>(17)));
}

TEST(Arena, BytesUsedGrowsAndResetKeepsChunks) {
  Arena arena;
  EXPECT_EQ(arena.BytesUsed(), 0u);
  double* first = arena.Alloc<double>(100);
  const std::size_t used_one = arena.BytesUsed();
  EXPECT_GE(used_one, 100 * sizeof(double));
  arena.Alloc<double>(100);
  EXPECT_GT(arena.BytesUsed(), used_one);
  const std::size_t reserved = arena.BytesReserved();
  EXPECT_GT(reserved, 0u);

  arena.Reset();
  EXPECT_EQ(arena.BytesUsed(), 0u);
  // Chunks are retained: same reservation, and the first allocation after
  // a Reset reuses the original chunk (bump restarts at its base).
  EXPECT_EQ(arena.BytesReserved(), reserved);
  EXPECT_EQ(arena.Alloc<double>(100), first);
}

TEST(Arena, GrowsPastChunkBoundariesAndOversizedRequests) {
  Arena arena;
  // Force growth beyond the 64 KiB first chunk …
  char* a = arena.Alloc<char>(Arena::kMinChunkBytes);
  char* b = arena.Alloc<char>(Arena::kMinChunkBytes);
  std::memset(a, 0xAB, Arena::kMinChunkBytes);
  std::memset(b, 0xCD, Arena::kMinChunkBytes);
  EXPECT_EQ(static_cast<unsigned char>(a[Arena::kMinChunkBytes - 1]), 0xAB);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0xCD);
  // … and past the doubling cap: a request larger than kMaxChunkBytes
  // still succeeds with a dedicated chunk.
  const std::size_t huge = Arena::kMaxChunkBytes + (1 << 20);
  char* c = arena.Alloc<char>(huge);
  c[0] = 1;
  c[huge - 1] = 2;
  EXPECT_GE(arena.BytesReserved(), huge);
}

TEST(Arena, RewindReleasesOnlyAllocationsAfterTheMark) {
  Arena arena;
  int32_t* keep = arena.Alloc<int32_t>(64);
  for (int i = 0; i < 64; ++i) keep[i] = i;

  const Arena::Mark mark = arena.Top();
  const std::size_t used_at_mark = arena.BytesUsed();
  int32_t* scratch = arena.Alloc<int32_t>(1024);  // stays in this chunk
  for (int i = 0; i < 1024; ++i) scratch[i] = -1;
  int32_t* spill = arena.Alloc<int32_t>(1 << 16);  // spills into chunk 2
  for (int i = 0; i < (1 << 16); ++i) spill[i] = -2;
  arena.Rewind(mark);  // walks back across the chunk boundary

  EXPECT_EQ(arena.BytesUsed(), used_at_mark);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(keep[i], i) << "pre-mark allocation clobbered at " << i;
  }
  // The released space is handed out again.
  EXPECT_EQ(arena.Alloc<int32_t>(16), scratch);
}

TEST(Arena, ScratchScopeNests) {
  Arena arena;
  arena.Alloc<char>(10);
  const std::size_t outer_used = arena.BytesUsed();
  {
    ScratchScope outer(arena);
    arena.Alloc<char>(1000);
    const std::size_t mid_used = arena.BytesUsed();
    {
      ScratchScope inner(arena);
      arena.Alloc<char>(100000);
      EXPECT_GT(arena.BytesUsed(), mid_used);
    }
    EXPECT_EQ(arena.BytesUsed(), mid_used);
  }
  EXPECT_EQ(arena.BytesUsed(), outer_used);
}

TEST(Arena, GetScratchArenaIsStableWithinAThread) {
  Arena& a = GetScratchArena();
  Arena& b = GetScratchArena();
  EXPECT_EQ(&a, &b);
  ScratchScope scope(a);
  EXPECT_TRUE(IsAligned(a.Alloc<double>(33)));
}

// Randomized watermark fuzz: a stack of (mark, live allocations), where
// each allocation is stamped with a deterministic byte pattern. Rewinds
// pop the stack; surviving allocations must keep their patterns — this
// is what catches a Rewind that walks chunks back incorrectly.
TEST(Arena, MarkRewindFuzz) {
  Arena arena;
  Rng rng(20260807);

  struct Alloc {
    unsigned char* ptr;
    std::size_t bytes;
    unsigned char stamp;
  };
  struct Frame {
    Arena::Mark mark;
    std::vector<Alloc> allocs;
  };
  std::vector<Frame> stack;
  stack.push_back({arena.Top(), {}});
  unsigned char next_stamp = 1;

  auto verify_live = [&] {
    for (const Frame& frame : stack) {
      for (const Alloc& alloc : frame.allocs) {
        for (std::size_t k = 0; k < alloc.bytes; ++k) {
          ASSERT_EQ(alloc.ptr[k], alloc.stamp)
              << "stamp " << static_cast<int>(alloc.stamp)
              << " clobbered at byte " << k;
        }
      }
    }
  };

  for (int step = 0; step < 3000; ++step) {
    const int64_t op = rng.UniformInt(0, 9);
    if (op <= 5) {  // allocate + stamp
      // Sizes biased small with occasional chunk-crossing spikes.
      const std::size_t bytes = static_cast<std::size_t>(
          op == 0 ? rng.UniformInt(1, 200000) : rng.UniformInt(1, 512));
      auto* p = static_cast<unsigned char*>(arena.AllocBytes(bytes));
      ASSERT_TRUE(IsAligned(p));
      std::memset(p, next_stamp, bytes);
      stack.back().allocs.push_back({p, bytes, next_stamp});
      next_stamp = static_cast<unsigned char>(next_stamp == 255 ? 1
                                                                : next_stamp +
                                                                      1);
    } else if (op <= 7) {  // push a mark
      stack.push_back({arena.Top(), {}});
    } else if (stack.size() > 1) {  // pop: rewind to the newest mark
      arena.Rewind(stack.back().mark);
      stack.pop_back();
      verify_live();
    }
  }
  verify_live();
  while (stack.size() > 1) {
    arena.Rewind(stack.back().mark);
    stack.pop_back();
  }
  verify_live();
  arena.Reset();
  EXPECT_EQ(arena.BytesUsed(), 0u);
}

}  // namespace
}  // namespace geacc
