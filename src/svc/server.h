// TCP front-ends speaking the svc/wire framing (DESIGN.md §11, §16).
//
// WireServer is the transport half: it listens on 127.0.0.1 (loopback
// only — exposing an arrangement store beyond the host is a deployment
// decision, not a library default), runs one accept thread and one thread
// per connection, and hands every well-framed request to a caller-supplied
// dispatcher, synchronously, one request/response per frame. That model
// is deliberately simple — the service underneath is the concurrent part
// (lock-free snapshot reads, single writer), so connection threads spend
// their time in decode/dispatch/encode and never block each other.
//
// Admission control: live connections are capped (Options::max_connections)
// because a shard coordinator's fan-out plus a loadgen fleet can otherwise
// spawn one thread per socket without bound. An over-limit connect is
// answered with a single kOverloaded frame and closed — a clean, parseable
// refusal the client maps to RpcStatus::kOverloaded — and finished
// connection slots are reclaimed for new peers.
//
// Protocol discipline: a malformed frame (bad length, version, type, or
// body) gets one kError reply when possible, then the connection is
// closed — a peer that cannot frame correctly cannot be resynchronized.
// Valid requests never close the connection; invalid *arguments* (bad
// ids, unparsable mutation lines) are kError replies on a healthy
// connection. Counters: svc.net.requests, svc.net.protocol_errors,
// svc.net.overloaded_conns.
//
// ServiceServer binds a WireServer to an ArrangementService — the
// single-node (or single-shard) deployment. The shard coordinator
// (src/shard/coordinator.h) builds its own dispatcher on the same
// transport.
//
// Thread-safety: Start/Stop from one controlling thread; Stop() (or the
// destructor) shuts down the listener and every live connection, then
// joins all threads. The dispatcher runs on connection threads and must
// be thread-safe. The ArrangementService must outlive the server.

#ifndef GEACC_SVC_SERVER_H_
#define GEACC_SVC_SERVER_H_

#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/service.h"
#include "svc/wire.h"

namespace geacc::svc {

class WireServer {
 public:
  // Maps one decoded request to its response; called concurrently from
  // connection threads.
  using Dispatcher = std::function<WireResponse(const WireRequest&)>;

  struct Options {
    // Live-connection cap; connects past it get one kOverloaded frame and
    // an immediate close. 0 means unlimited (tests only).
    int max_connections = 256;
  };

  explicit WireServer(Dispatcher dispatcher);
  WireServer(Dispatcher dispatcher, Options options);
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port — read it back via
  // port()) and starts accepting. False with a diagnostic on bind/listen
  // failure.
  bool Start(int port, std::string* error = nullptr);

  // The bound port; valid after a successful Start().
  int port() const { return port_; }

  // Stops accepting, tears down live connections, joins every thread.
  // Idempotent.
  void Stop();

 private:
  void AcceptLoop();
  void ConnectionLoop(size_t slot, int fd);
  // One request in, one response out. False ⇒ close the connection.
  bool HandleFrame(const std::string& frame_body, int fd);

  Dispatcher dispatcher_;
  Options options_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::thread accept_thread_;

  std::mutex mu_;
  bool stopping_ = false;
  std::vector<int> connection_fds_;  // -1 once its thread finished
  std::vector<std::thread> connection_threads_;
};

class ServiceServer {
 public:
  // `service` must outlive the server.
  explicit ServiceServer(ArrangementService* service,
                         WireServer::Options options = {});

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  bool Start(int port, std::string* error = nullptr) {
    return server_.Start(port, error);
  }
  int port() const { return server_.port(); }
  void Stop() { server_.Stop(); }

 private:
  WireResponse Dispatch(const WireRequest& request);

  ArrangementService* service_;
  WireServer server_;
};

}  // namespace geacc::svc

#endif  // GEACC_SVC_SERVER_H_
