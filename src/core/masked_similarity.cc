#include "core/masked_similarity.h"

#include <utility>

#include "util/check.h"

namespace geacc {

MaskedSimilarity::MaskedSimilarity(std::unique_ptr<SimilarityFunction> base,
                                   int base_dim, int num_users,
                                   std::vector<uint8_t> allowed)
    : base_(std::move(base)),
      base_dim_(base_dim),
      num_users_(num_users),
      allowed_(std::move(allowed)) {
  GEACC_CHECK(base_ != nullptr);
  GEACC_CHECK_GE(base_dim_, 0);
  GEACC_CHECK_GE(num_users_, 0);
}

double MaskedSimilarity::Compute(const double* a, const double* b,
                                 int dim) const {
  GEACC_DCHECK(dim == base_dim_ + 1);
  // The trailing column encodes the side: events carry +v, users carry
  // -(u+1), so the lookup works for either argument order.
  const double tag_a = a[dim - 1];
  const double tag_b = b[dim - 1];
  const double event_tag = tag_a >= 0.0 ? tag_a : tag_b;
  const double user_tag = tag_a >= 0.0 ? tag_b : tag_a;
  GEACC_DCHECK(event_tag >= 0.0 && user_tag < 0.0);
  const int v = static_cast<int>(event_tag);
  const int u = static_cast<int>(-user_tag) - 1;
  const size_t index =
      static_cast<size_t>(v) * static_cast<size_t>(num_users_) +
      static_cast<size_t>(u);
  GEACC_DCHECK(index < allowed_.size());
  if (allowed_[index] == 0) return 0.0;
  return base_->Compute(a, b, base_dim_);
}

std::unique_ptr<SimilarityFunction> MaskedSimilarity::Clone() const {
  return std::make_unique<MaskedSimilarity>(base_->Clone(), base_dim_,
                                            num_users_, allowed_);
}

Instance MaskInstance(const Instance& instance,
                      const std::vector<uint8_t>& allowed) {
  const int dim = instance.dim();
  const int events = instance.num_events();
  const int users = instance.num_users();
  GEACC_CHECK_EQ(static_cast<int64_t>(allowed.size()),
                 static_cast<int64_t>(events) * users);

  AttributeMatrix event_attributes(events, dim + 1);
  std::vector<int> event_capacities(events);
  for (EventId v = 0; v < events; ++v) {
    const double* source = instance.event_attributes().Row(v);
    double* target = event_attributes.MutableRow(v);
    for (int j = 0; j < dim; ++j) target[j] = source[j];
    target[dim] = static_cast<double>(v);
    event_capacities[v] = instance.event_capacity(v);
  }
  AttributeMatrix user_attributes(users, dim + 1);
  std::vector<int> user_capacities(users);
  for (UserId u = 0; u < users; ++u) {
    const double* source = instance.user_attributes().Row(u);
    double* target = user_attributes.MutableRow(u);
    for (int j = 0; j < dim; ++j) target[j] = source[j];
    target[dim] = -static_cast<double>(u) - 1.0;
    user_capacities[u] = instance.user_capacity(u);
  }

  ConflictGraph conflicts(events);
  for (EventId v = 0; v < events; ++v) {
    for (const EventId w : instance.conflicts().ConflictsOf(v)) {
      if (w > v) conflicts.AddConflict(v, w);
    }
  }
  return Instance(std::move(event_attributes), std::move(event_capacities),
                  std::move(user_attributes), std::move(user_capacities),
                  std::move(conflicts),
                  std::make_unique<MaskedSimilarity>(
                      instance.similarity().Clone(), dim, users, allowed));
}

}  // namespace geacc
