#include "gen/synthetic.h"

#include <memory>
#include <utility>
#include <vector>

#include "util/check.h"

namespace geacc {

SyntheticConfig& SyntheticConfig::WithZipfAttributes(double skew) {
  event_attribute = DistributionSpec::Zipf(skew, max_attribute);
  user_attribute = DistributionSpec::Zipf(skew, max_attribute);
  return *this;
}

SyntheticConfig& SyntheticConfig::WithNormalAttributes(double mean_fraction,
                                                       double stddev_fraction) {
  event_attribute = DistributionSpec::Normal(mean_fraction * max_attribute,
                                             stddev_fraction * max_attribute);
  user_attribute = DistributionSpec::Normal(mean_fraction * max_attribute,
                                            stddev_fraction * max_attribute);
  return *this;
}

SyntheticConfig& SyntheticConfig::WithNormalCapacities() {
  event_capacity = DistributionSpec::Normal(25.0, 12.5);
  user_capacity = DistributionSpec::Normal(2.0, 1.0);
  return *this;
}

Instance GenerateSynthetic(const SyntheticConfig& config) {
  GEACC_CHECK_GE(config.num_events, 0);
  GEACC_CHECK_GE(config.num_users, 0);
  GEACC_CHECK_GE(config.dim, 1);
  Rng rng(config.seed);

  const Sampler event_attr(config.event_attribute);
  const Sampler user_attr(config.user_attribute);
  const Sampler event_cap(config.event_capacity);
  const Sampler user_cap(config.user_capacity);

  AttributeMatrix events(config.num_events, config.dim);
  std::vector<int> event_capacities(config.num_events);
  for (int v = 0; v < config.num_events; ++v) {
    double* row = events.MutableRow(v);
    for (int j = 0; j < config.dim; ++j) {
      row[j] = event_attr.SampleAttribute(rng, config.max_attribute);
    }
    event_capacities[v] = event_cap.SampleCapacity(rng);
  }

  AttributeMatrix users(config.num_users, config.dim);
  std::vector<int> user_capacities(config.num_users);
  for (int u = 0; u < config.num_users; ++u) {
    double* row = users.MutableRow(u);
    for (int j = 0; j < config.dim; ++j) {
      row[j] = user_attr.SampleAttribute(rng, config.max_attribute);
    }
    user_capacities[u] = user_cap.SampleCapacity(rng);
  }

  ConflictGraph conflicts =
      ConflictGraph::Random(config.num_events, config.conflict_density, rng);

  std::unique_ptr<SimilarityFunction> similarity =
      MakeSimilarity(config.similarity, config.max_attribute);
  GEACC_CHECK(similarity != nullptr)
      << "unknown similarity '" << config.similarity << "'";

  return Instance(std::move(events), std::move(event_capacities),
                  std::move(users), std::move(user_capacities),
                  std::move(conflicts), std::move(similarity));
}

}  // namespace geacc
